"""Square Attack tests: budgets, constraints, gradient-free behaviour."""

import numpy as np
import pytest

from repro.attacks.square import SquareAttack
from repro.core.evaluation import adversarial_accuracy


class TestSquareAttack:
    def test_constraints_hold(self, tiny_victim, tiny_task):
        x, y = tiny_task.x_test[:10], tiny_task.y_test[:10]
        eps = 16 / 255
        result = SquareAttack(eps, max_queries=20, seed=3).generate(tiny_victim, x, y)
        assert (np.abs(result.x_adv - x) <= eps + 1e-6).all()
        assert result.x_adv.min() >= 0.0 and result.x_adv.max() <= 1.0

    def test_query_budget_respected(self, tiny_victim, tiny_task):
        x, y = tiny_task.x_test[:10], tiny_task.y_test[:10]
        result = SquareAttack(16 / 255, max_queries=15).generate(tiny_victim, x, y)
        assert (result.queries <= 15).all()
        assert (result.queries >= 1).all()

    def test_misclassified_images_stop_early(self, tiny_victim, tiny_task):
        """Images already adversarial after init shouldn't burn queries."""
        x, y = tiny_task.x_test[:20], tiny_task.y_test[:20]
        wrong_labels = (y + 1) % 4  # pretend wrong labels: init misclassifies
        result = SquareAttack(4 / 255, max_queries=30).generate(tiny_victim, x, wrong_labels)
        assert result.queries.min() == 1

    def test_attack_reduces_accuracy(self, tiny_victim, tiny_task):
        x, y = tiny_task.x_test[:40], tiny_task.y_test[:40]
        clean = adversarial_accuracy(tiny_victim, x, y)
        result = SquareAttack(48 / 255, max_queries=60, seed=1).generate(tiny_victim, x, y)
        attacked = adversarial_accuracy(tiny_victim, result.x_adv, y)
        assert attacked < clean

    def test_more_queries_no_weaker(self, tiny_victim, tiny_task):
        x, y = tiny_task.x_test[:30], tiny_task.y_test[:30]
        few = SquareAttack(32 / 255, max_queries=5, seed=2).generate(tiny_victim, x, y)
        many = SquareAttack(32 / 255, max_queries=60, seed=2).generate(tiny_victim, x, y)
        acc_few = adversarial_accuracy(tiny_victim, few.x_adv, y)
        acc_many = adversarial_accuracy(tiny_victim, many.x_adv, y)
        assert acc_many <= acc_few + 0.05

    def test_deterministic_given_seed(self, tiny_victim, tiny_task):
        x, y = tiny_task.x_test[:8], tiny_task.y_test[:8]
        a = SquareAttack(16 / 255, max_queries=10, seed=9).generate(tiny_victim, x, y)
        b = SquareAttack(16 / 255, max_queries=10, seed=9).generate(tiny_victim, x, y)
        np.testing.assert_allclose(a.x_adv, b.x_adv)

    def test_different_seeds_differ(self, tiny_victim, tiny_task):
        x, y = tiny_task.x_test[:8], tiny_task.y_test[:8]
        a = SquareAttack(16 / 255, max_queries=10, seed=1).generate(tiny_victim, x, y)
        b = SquareAttack(16 / 255, max_queries=10, seed=2).generate(tiny_victim, x, y)
        assert not np.allclose(a.x_adv, b.x_adv)

    def test_p_schedule_decays(self):
        attack = SquareAttack(0.05, max_queries=1000)
        early = attack._p_schedule(5)
        late = attack._p_schedule(900)
        assert late < early

    def test_loss_never_increases_on_accepted_moves(self, tiny_victim, tiny_task):
        """Random search only accepts improvements: final margin loss
        <= initial margin loss for every image."""
        from repro.attacks.base import margin_loss, predict_logits

        x, y = tiny_task.x_test[:15], tiny_task.y_test[:15]
        eps = 16 / 255
        result = SquareAttack(eps, max_queries=25, seed=4).generate(tiny_victim, x, y)
        # Reconstruct the init the attack used (same seed path) is not
        # trivial; instead check vs the no-attack margin: perturbation
        # found should not make images *more* confidently correct than
        # the stripes init could. Weak but useful invariant:
        final = margin_loss(predict_logits(tiny_victim, result.x_adv), y)
        clean = margin_loss(predict_logits(tiny_victim, x), y)
        assert (final <= clean + 5.0).all()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SquareAttack(-0.1)
        with pytest.raises(ValueError):
            SquareAttack(0.1, max_queries=0)

    def test_success_consistent_with_margin(self, tiny_victim, tiny_task):
        from repro.attacks.base import margin_loss, predict_logits

        x, y = tiny_task.x_test[:12], tiny_task.y_test[:12]
        result = SquareAttack(32 / 255, max_queries=20, seed=5).generate(tiny_victim, x, y)
        margins = margin_loss(predict_logits(tiny_victim, result.x_adv), y)
        np.testing.assert_array_equal(result.success, margins < 0)
