"""Zero-copy object sharing over ``multiprocessing.shared_memory``.

:func:`share` pickles an object graph while intercepting every large
``np.ndarray`` through ``pickle.Pickler.persistent_id``; the arrays are
packed into **one** shared-memory segment (64-byte aligned), followed by
the pickle bytes themselves, so the :class:`SharedHandle` sent to
workers is a few hundred bytes no matter how big the model is.

Workers call :func:`load`: the segment is attached once, the pickle
stream is replayed with ``persistent_load`` returning **read-only**
``np.ndarray`` views into the segment — N workers see one physical copy
of the victim weights, GENIEx parameters and programmed crossbar
conductance banks instead of N.

Read-only views are a correctness feature, not just a memory one: any
code path that tried to mutate programmed state in place would raise
immediately instead of corrupting sibling workers.  Mutable scratch
buffers must therefore be stripped before sharing (the backend strips
the engine voltage workspace and the GENIEx GEMM workspace; they
regenerate lazily per worker).

When the platform lacks POSIX shared memory, arrays ride inline in the
payload — functionally identical, just not zero-copy — and the backend
may instead fall back to serial execution.

Lifetime: the parent owns segments and must :func:`release` them (the
backend does, and also at interpreter exit).  Workers only ever close.
The stdlib registers attaches with the fork-shared resource tracker;
registration is set-based, so the parent's unlink leaves the tracker
clean and crash exits still reclaim segments.
"""

from __future__ import annotations

import io
import itertools
import os
import pickle
from dataclasses import dataclass, field

import numpy as np

try:  # pragma: no cover - exercised implicitly on POSIX
    from multiprocessing import shared_memory as _shm

    HAVE_SHM = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    _shm = None
    HAVE_SHM = False

#: Arrays at least this large (bytes) are placed in shared memory;
#: smaller ones stay inline in the pickle stream (descriptor overhead
#: would dominate).
DEFAULT_MIN_BYTES = 512

_ALIGN = 64  # cache-line alignment for every packed array

_token_counter = itertools.count()


@dataclass(frozen=True)
class _ArrayDescriptor:
    """Location of one packed array inside the segment."""

    offset: int
    dtype: str
    shape: tuple


@dataclass
class SharedHandle:
    """Picklable, queue-sized reference to a shared object graph.

    Exactly one of ``shm_name`` / ``inline_payload`` is set.  ``token``
    is unique per :func:`share` call and keys the worker-side object
    cache, so each worker unpickles a given handle at most once.
    """

    token: str
    nbytes: int
    shm_name: str | None = None
    pickle_offset: int = 0
    pickle_length: int = 0
    descriptors: list[_ArrayDescriptor] = field(default_factory=list)
    inline_payload: bytes | None = None
    inline_arrays: list[np.ndarray] = field(default_factory=list)


class _ArenaPickler(pickle.Pickler):
    """Pickler diverting large ndarrays into an external array table."""

    def __init__(self, file, min_bytes: int):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.min_bytes = min_bytes
        self.arrays: list[np.ndarray] = []
        self._index_by_id: dict[int, int] = {}

    def persistent_id(self, obj):
        if (
            isinstance(obj, np.ndarray)
            and obj.dtype != object
            and obj.nbytes >= self.min_bytes
        ):
            index = self._index_by_id.get(id(obj))
            if index is None:
                index = len(self.arrays)
                self.arrays.append(np.ascontiguousarray(obj))
                self._index_by_id[id(obj)] = index
            return ("repro-shm-array", index)
        return None


class _ArenaUnpickler(pickle.Unpickler):
    """Unpickler resolving array references against a view table."""

    def __init__(self, file, arrays: list[np.ndarray]):
        super().__init__(file)
        self.arrays = arrays

    def persistent_load(self, pid):
        tag, index = pid
        if tag != "repro-shm-array":
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return self.arrays[index]


def _pack_layout(arrays: list[np.ndarray]) -> tuple[list[_ArrayDescriptor], int]:
    descriptors = []
    offset = 0
    for arr in arrays:
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        descriptors.append(
            _ArrayDescriptor(offset=offset, dtype=arr.dtype.str, shape=arr.shape)
        )
        offset += arr.nbytes
    return descriptors, offset


def share(obj, min_bytes: int = DEFAULT_MIN_BYTES) -> SharedHandle:
    """Pickle ``obj`` with its large arrays packed into shared memory."""
    buffer = io.BytesIO()
    pickler = _ArenaPickler(buffer, min_bytes)
    pickler.dump(obj)
    payload = buffer.getvalue()
    token = f"{os.getpid():x}-{next(_token_counter):x}"

    if not HAVE_SHM:
        return SharedHandle(
            token=token,
            nbytes=len(payload) + sum(a.nbytes for a in pickler.arrays),
            inline_payload=payload,
            inline_arrays=pickler.arrays,
        )

    descriptors, arrays_bytes = _pack_layout(pickler.arrays)
    pickle_offset = (arrays_bytes + _ALIGN - 1) // _ALIGN * _ALIGN
    total = pickle_offset + len(payload)
    segment = _shm.SharedMemory(create=True, size=max(total, 1))
    try:
        for arr, desc in zip(pickler.arrays, descriptors):
            dst = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=segment.buf, offset=desc.offset
            )
            dst[...] = arr
        segment.buf[pickle_offset : pickle_offset + len(payload)] = payload
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    handle = SharedHandle(
        token=token,
        nbytes=total,
        shm_name=segment.name,
        pickle_offset=pickle_offset,
        pickle_length=len(payload),
        descriptors=descriptors,
    )
    _OWNED_SEGMENTS[handle.token] = segment
    return handle


#: Parent-side segments owned by this process, keyed by handle token.
_OWNED_SEGMENTS: dict[str, "_shm.SharedMemory"] = {}

#: Worker-side caches: attached segments and unpickled objects.
_ATTACHED_SEGMENTS: dict[str, "_shm.SharedMemory"] = {}
_LOADED_OBJECTS: dict[str, object] = {}


def _attach(name: str) -> "_shm.SharedMemory":
    segment = _ATTACHED_SEGMENTS.get(name)
    if segment is None:
        segment = _shm.SharedMemory(name=name)
        _ATTACHED_SEGMENTS[name] = segment
    return segment


def load(handle: SharedHandle):
    """Materialize the object graph a handle refers to (cached per token).

    Arrays resolve to read-only views into the shared segment — no
    copies.  The same handle loads once per process; subsequent calls
    return the cached object, which is how persistent workers keep a
    model across shard tasks.
    """
    cached = _LOADED_OBJECTS.get(handle.token)
    if cached is not None:
        return cached

    if handle.shm_name is None:
        arrays = list(handle.inline_arrays)
        payload = handle.inline_payload
    else:
        segment = _attach(handle.shm_name)
        arrays = []
        for desc in handle.descriptors:
            view = np.ndarray(
                desc.shape,
                dtype=np.dtype(desc.dtype),
                buffer=segment.buf,
                offset=desc.offset,
            )
            view.flags.writeable = False
            arrays.append(view)
        payload = bytes(
            segment.buf[
                handle.pickle_offset : handle.pickle_offset + handle.pickle_length
            ]
        )
    obj = _ArenaUnpickler(io.BytesIO(payload), arrays).load()
    _LOADED_OBJECTS[handle.token] = obj
    return obj


def release(handle: SharedHandle) -> None:
    """Parent-side teardown: unlink the segment and drop local caches."""
    _LOADED_OBJECTS.pop(handle.token, None)
    segment = _OWNED_SEGMENTS.pop(handle.token, None)
    if segment is not None:
        segment.close()
        segment.unlink()


def release_all() -> None:
    """Unlink every segment this process still owns (atexit safety net)."""
    for token in list(_OWNED_SEGMENTS):
        segment = _OWNED_SEGMENTS.pop(token)
        try:
            segment.close()
            segment.unlink()
        except OSError:  # already gone (e.g. tracker cleanup raced us)
            pass


def worker_detach_all() -> None:
    """Worker-side teardown: close attached segments, drop object cache."""
    _LOADED_OBJECTS.clear()
    for name in list(_ATTACHED_SEGMENTS):
        try:
            _ATTACHED_SEGMENTS.pop(name).close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
