"""Metrics registry: counters, gauges and P² streaming histograms.

One process-global :data:`REGISTRY` absorbs every metric the system
emits; the crossbar hot-path counters (:class:`repro.xbar.perf.
PerfCounters`) and the engine cache remain the cheap accumulation
*backends*, published into the registry by :func:`publish_hotpath`
whenever a report is rendered or an obs run flushes.  The CLI ``--perf``
flag is an alias for :func:`render_hotpath` over the registry.

Histograms estimate quantiles with the P² algorithm (Jain & Chlamtac,
CACM 1985): five markers per tracked quantile, O(1) memory and update —
exact (numpy-identical linear interpolation) below five observations,
approximate convergence beyond.  Metric names are dotted paths
(``analog.dev.rel.<layer>``); labels such as ``task/preset`` use ``/``
so the dotted structure stays parseable.
"""

from __future__ import annotations

import math


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def as_dict(self) -> float:
        return self.value


class Gauge:
    """Last-value metric with min/max envelope."""

    __slots__ = ("value", "min", "max", "updates")

    def __init__(self) -> None:
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.updates += 1

    def as_dict(self) -> dict:
        if self.updates == 0:
            return {"value": 0.0, "min": 0.0, "max": 0.0, "updates": 0}
        return {
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "updates": self.updates,
        }


class P2Quantile:
    """P² single-quantile streaming estimator (5 markers, O(1) update)."""

    __slots__ = ("p", "_heights", "_positions", "_desired", "_increments", "count")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def observe(self, x: float) -> None:
        self.count += 1
        if self.count <= 5:
            self._heights.append(float(x))
            self._heights.sort()
            return
        q, n, d = self._heights, self._positions, self._desired
        if x < q[0]:
            q[0] = float(x)
            k = 0
        elif x >= q[4]:
            q[4] = float(x)
            k = 3
        else:
            k = 0
            while k < 3 and not x < q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            d[i] += self._increments[i]
        for i in (1, 2, 3):
            delta = d[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                sign = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, sign)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, sign)
                q[i] = candidate
                n[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        q, n = self._heights, self._positions
        return q[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, sign: float) -> float:
        q, n = self._heights, self._positions
        j = i + int(sign)
        return q[i] + sign * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> float:
        if self.count == 0:
            return float("nan")
        if self.count <= 5:
            # Exact linear-interpolation quantile (numpy's default
            # method) while the sample still fits in the markers.
            h = (self.count - 1) * self.p
            lo = int(math.floor(h))
            hi = min(lo + 1, self.count - 1)
            frac = h - lo
            return self._heights[lo] * (1.0 - frac) + self._heights[hi] * frac
        return self._heights[2]


class Histogram:
    """Streaming histogram: count/sum/min/max plus P² quantiles."""

    __slots__ = ("count", "sum", "min", "max", "_quantiles")

    DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

    def __init__(self, quantiles: tuple[float, ...] = DEFAULT_QUANTILES):
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._quantiles = {p: P2Quantile(p) for p in quantiles}

    def observe(self, x: float) -> None:
        x = float(x)
        self.count += 1
        self.sum += x
        self.min = min(self.min, x)
        self.max = max(self.max, x)
        for estimator in self._quantiles.values():
            estimator.observe(x)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def quantile(self, p: float) -> float:
        return self._quantiles[p].value()

    def as_dict(self) -> dict:
        if self.count == 0:
            return {"count": 0}
        payload = {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        for p, estimator in self._quantiles.items():
            payload[f"p{int(round(p * 100))}"] = estimator.value()
        return payload


class RecordingHistogram(Histogram):
    """Histogram that additionally keeps the raw observation sequence.

    Pool workers record with this subclass so the parent can *replay*
    the exact observations in shard order — P² marker state is
    order-dependent, so shipping summary statistics instead would break
    the serial-vs-parallel metric-equality contract of
    :mod:`repro.parallel`.
    """

    __slots__ = ("samples",)

    def __init__(self, quantiles: tuple[float, ...] = Histogram.DEFAULT_QUANTILES):
        super().__init__(quantiles)
        self.samples: list[float] = []

    def observe(self, x: float) -> None:
        x = float(x)
        super().observe(x)
        self.samples.append(x)


class MetricsRegistry:
    """Name-addressed store of counters, gauges and histograms.

    ``record_samples`` switches new histograms to
    :class:`RecordingHistogram` so the registry's state can be exported
    losslessly (:meth:`export_state`) and folded into another registry
    (:meth:`merge_state`) — the worker-to-parent telemetry path.
    """

    def __init__(self, record_samples: bool = False) -> None:
        self.record_samples = record_samples
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # Get-or-create accessors -----------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, quantiles: tuple[float, ...] = Histogram.DEFAULT_QUANTILES
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            cls = RecordingHistogram if self.record_samples else Histogram
            metric = self._histograms[name] = cls(quantiles)
        return metric

    # ------------------------------------------------------------------
    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> dict:
        """JSON-ready state of every metric (sorted, deterministic)."""
        return {
            "counters": {k: c.as_dict() for k, c in sorted(self._counters.items())},
            "gauges": {k: g.as_dict() for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.as_dict() for k, h in sorted(self._histograms.items())
            },
        }

    # Worker-to-parent merge path ---------------------------------------
    def export_state(self) -> dict:
        """Lossless, mergeable state of this registry.

        Requires ``record_samples`` histograms: the export carries the
        raw observation sequences so a receiving registry can replay
        them and land in the *exact* P² marker state a serial run would
        have reached.
        """
        histograms: dict[str, tuple] = {}
        for name, hist in self._histograms.items():
            samples = getattr(hist, "samples", None)
            if samples is None:
                raise RuntimeError(
                    "export_state needs a record_samples=True registry "
                    f"(histogram {name!r} has no raw samples)"
                )
            histograms[name] = (tuple(hist._quantiles), list(samples))
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {
                k: {"value": g.value, "min": g.min, "max": g.max, "updates": g.updates}
                for k, g in self._gauges.items()
                if g.updates
            },
            "histograms": histograms,
        }

    def merge_state(self, state: dict) -> None:
        """Fold an :meth:`export_state` payload into this registry.

        Counters add; gauges adopt the incoming last value (states must
        be merged in shard order for last-value semantics to match a
        serial run) and widen the min/max envelope; histogram samples
        are re-observed one by one, reproducing the serial P² state.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, incoming in state.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.value = incoming["value"]
            gauge.min = min(gauge.min, incoming["min"])
            gauge.max = max(gauge.max, incoming["max"])
            gauge.updates += incoming["updates"]
        for name, (quantiles, samples) in state.get("histograms", {}).items():
            hist = self.histogram(name, tuple(quantiles))
            for x in samples:
                hist.observe(x)


#: Process-global registry: the single place metrics accumulate.
REGISTRY = MetricsRegistry()


# ----------------------------------------------------------------------
# Hot-path view: the crossbar perf counters + engine cache, folded in.
# ----------------------------------------------------------------------

#: PerfCounters field order used by the rendered hot-path lines.
HOTPATH_FIELDS = (
    "matvec_calls",
    "matvec_rows",
    "bank_evals",
    "streams_evaluated",
    "streams_skipped",
    "rows_compacted",
    "predictor_seconds",
    "int_matvec_calls",
    "planes_evaluated",
    "planes_skipped",
    "int_sat_events",
)


def format_hotpath_fields(fields: dict) -> str:
    """One-line rendering of a hot-path counter dict.

    The single formatting path for per-engine and per-model counter
    lines (``PerfCounters.format`` delegates here).  The integer-path
    segment only appears once the int8 pulse-expansion path has served
    traffic, so float-mode output is unchanged.
    """
    evaluated = fields.get("streams_evaluated", 0)
    skipped = fields.get("streams_skipped", 0)
    total = evaluated + skipped
    skip_pct = 100.0 * skipped / total if total else 0.0
    line = (
        f"matvec={fields.get('matvec_calls', 0):.0f} "
        f"({fields.get('matvec_rows', 0):.0f} rows)  "
        f"bank_evals={fields.get('bank_evals', 0):.0f}  "
        f"streams={evaluated:.0f} evaluated / "
        f"{skipped:.0f} skipped ({skip_pct:.1f}%)  "
        f"rows_compacted={fields.get('rows_compacted', 0):.0f}  "
        f"predictor={fields.get('predictor_seconds', 0.0):.3f}s"
    )
    p_eval = fields.get("planes_evaluated", 0)
    p_skip = fields.get("planes_skipped", 0)
    if fields.get("int_matvec_calls", 0) or p_eval or p_skip:
        p_total = p_eval + p_skip
        p_pct = 100.0 * p_skip / p_total if p_total else 0.0
        line += (
            f"  int8: matvec={fields.get('int_matvec_calls', 0):.0f}  "
            f"planes={p_eval:.0f} evaluated / "
            f"{p_skip:.0f} skipped ({p_pct:.1f}%)  "
            f"sat_events={fields.get('int_sat_events', 0):.0f}"
        )
    return line


def publish_hotpath(models: dict, registry: MetricsRegistry | None = None) -> None:
    """Publish per-model hot-path counters + cache stats into a registry.

    ``models`` maps ``task/preset`` labels to converted hardware models.
    Published names (gauges, idempotent on republish)::

        hotpath.<label>.total.<field>
        hotpath.<label>.layer.<layer>.<field>
        hotpath.<label>.layer.<layer>.guard_trips
        engine_cache.{hits,misses,evictions,disk_hits,disk_stores,disk_errors}

    Labels use ``/`` (never ``.``) so the dotted prefix structure stays
    parseable by the renderer and the run summarizer.
    """
    # Local imports: repro.xbar pulls in the whole simulator stack and
    # itself renders through this module, so the dependency must stay
    # one-way at import time.
    from repro.xbar.engine_cache import ENGINE_CACHE
    from repro.xbar.perf import iter_engines, perf_report

    registry = registry if registry is not None else REGISTRY
    for label, model in models.items():
        report = perf_report(model)
        for name, value in report.total.as_dict().items():
            registry.gauge(f"hotpath.{label}.total.{name}").set(value)
        for layer, counters in report.layers.items():
            for name, value in counters.as_dict().items():
                registry.gauge(f"hotpath.{label}.layer.{layer}.{name}").set(value)
        for layer, engine in iter_engines(model):
            registry.gauge(f"hotpath.{label}.layer.{layer}.guard_trips").set(
                engine.guard_trips
            )
    for name, value in ENGINE_CACHE.stats.as_dict().items():
        registry.gauge(f"engine_cache.{name}").set(value)


def _hotpath_labels(gauges: dict) -> list[str]:
    labels = []
    for name in gauges:
        if name.startswith("hotpath.") and ".total." in name:
            label = name[len("hotpath.") :].split(".total.", 1)[0]
            if label not in labels:
                labels.append(label)
    return labels


def render_hotpath(
    registry: MetricsRegistry | None = None, per_layer: bool = False
) -> str:
    """Text hot-path report assembled from registry gauges.

    This is what ``--perf`` prints; identical information reaches the
    JSONL metrics snapshot of an ``--obs`` run.
    """
    registry = registry if registry is not None else REGISTRY
    gauges = registry._gauges
    lines = ["=== hot-path perf counters ==="]
    labels = _hotpath_labels(gauges)
    if not labels:
        lines.append("(no lab-cached hardware models; engine cache stats are global)")
    for label in labels:
        total = {
            field: gauges[f"hotpath.{label}.total.{field}"].value
            for field in HOTPATH_FIELDS
            if f"hotpath.{label}.total.{field}" in gauges
        }
        lines.append(f"[{label}] total: {format_hotpath_fields(total)}")
        if per_layer:
            prefix = f"hotpath.{label}.layer."
            layers: dict[str, dict] = {}
            for name, gauge in gauges.items():
                if not name.startswith(prefix):
                    continue
                layer, _, field = name[len(prefix) :].rpartition(".")
                layers.setdefault(layer, {})[field] = gauge.value
            width = max((len(n) for n in layers), default=0)
            for layer in sorted(layers):
                lines.append(
                    f"  {layer:<{width}}  {format_hotpath_fields(layers[layer])}"
                )
    cache = {
        name: gauges[f"engine_cache.{name}"].value
        for name in ("hits", "misses", "evictions", "disk_hits", "disk_stores", "disk_errors")
        if f"engine_cache.{name}" in gauges
    }
    lines.append("engine cache: " + format_cache_fields(cache))
    return "\n".join(lines)


def format_cache_fields(cache: dict) -> str:
    """Render engine-cache counters; the disk tier appears when used."""
    text = (
        f"{cache.get('hits', 0):.0f} hits / {cache.get('misses', 0):.0f} misses / "
        f"{cache.get('evictions', 0):.0f} evicted"
    )
    disk_hits = cache.get("disk_hits", 0)
    disk_stores = cache.get("disk_stores", 0)
    disk_errors = cache.get("disk_errors", 0)
    if disk_hits or disk_stores or disk_errors:
        text += f" / disk {disk_hits:.0f} hits, {disk_stores:.0f} stores"
        if disk_errors:
            text += f", {disk_errors:.0f} errors"
    return text
