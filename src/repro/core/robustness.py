"""Robustness-gain analyses derived from evaluation cells.

The paper's headline quantity is the *absolute gain in adversarial
accuracy* of a crossbar variant over the digital baseline under the
same attack; Fig. 5 plots that gain against the crossbar's measured
Non-ideality Factor, exposing the push-pull between functional error
and intrinsic robustness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluation import CellResult
from repro.obs import runtime as _obs_runtime


@dataclass(frozen=True)
class GainPoint:
    """One (NF, gain) point of Fig. 5."""

    attack: str
    task: str
    epsilon: float
    preset: str
    nf: float
    gain: float  # absolute adversarial-accuracy improvement over baseline


def robustness_gain(cell: CellResult, preset: str) -> float:
    """Absolute adversarial-accuracy gain of ``preset`` over baseline."""
    return cell.delta(preset)


def gain_vs_nf_table(
    cells: list[CellResult],
    nf_by_preset: dict[str, float],
) -> list[GainPoint]:
    """Assemble Fig. 5's points from evaluated cells.

    Only variants present in ``nf_by_preset`` (i.e. crossbar models,
    not the comparison defenses) contribute points.
    """
    points: list[GainPoint] = []
    for cell in cells:
        for preset, nf in nf_by_preset.items():
            if preset in cell.variants:
                point = GainPoint(
                    attack=cell.attack,
                    task=cell.task,
                    epsilon=cell.epsilon,
                    preset=preset,
                    nf=nf,
                    gain=cell.delta(preset),
                )
                points.append(point)
                _obs_runtime.event(
                    "gain_point",
                    preset=point.preset,
                    nf=point.nf,
                    gain=point.gain,
                    attack=point.attack,
                    task=point.task,
                    epsilon=point.epsilon,
                )
    return points


def format_gain_table(points: list[GainPoint]) -> str:
    """Fixed-width text rendering of Fig. 5's data."""
    lines = [f"{'attack':<38} {'task':<10} {'eps':>7} {'preset':<12} {'NF':>6} {'gain':>8}"]
    for p in sorted(points, key=lambda q: (q.task, q.attack, q.epsilon, q.nf)):
        lines.append(
            f"{p.attack:<38} {p.task:<10} {p.epsilon:7.4f} {p.preset:<12} "
            f"{p.nf:6.3f} {p.gain * 100:+8.2f}"
        )
    return "\n".join(lines)
