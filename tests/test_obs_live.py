"""Live-telemetry primitives: ring buffers, scrape text, table renderer.

The load-bearing contracts pinned here:

* :class:`RingBuffer` is *fixed-memory*: traffic folds into resolution
  buckets, only elapsed time (capped at ``capacity`` buckets) grows it.
* Snapshots are lossless through JSON, and merging is a pure function
  of the recorded point *set* — shard and merge in any order, get the
  same window (the worker-to-parent telemetry path depends on this).
* P² histogram state exported with raw samples replays to the *exact*
  serial marker state when merged in shard order.
* ``trace_sampled`` is deterministic, RNG-free and evenly spaced.
* The Prometheus exposition renders every metric family and the shared
  table renderer aligns what every CLI surface prints.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.live import (
    RingBuffer,
    TimeSeriesStore,
    prometheus_name,
    render_prometheus,
    sample_count,
    trace_sampled,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.summary import render_table

pytestmark = [pytest.mark.fast]


# ----------------------------------------------------------------------
# RingBuffer
# ----------------------------------------------------------------------

def test_ring_buffer_buckets_combine_by_kind() -> None:
    total = RingBuffer(kind="sum", resolution_s=1.0)
    peak = RingBuffer(kind="max", resolution_s=1.0)
    floor = RingBuffer(kind="min", resolution_s=1.0)
    for buf in (total, peak, floor):
        buf.record(3.0, t=10.2)
        buf.record(5.0, t=10.9)  # same bucket
        buf.record(1.0, t=11.1)  # next bucket
    assert total.points() == [(10.0, 8.0), (11.0, 1.0)]
    assert peak.points() == [(10.0, 5.0), (11.0, 1.0)]
    assert floor.points() == [(10.0, 3.0), (11.0, 1.0)]


def test_ring_buffer_memory_is_bounded_by_capacity() -> None:
    buf = RingBuffer(kind="sum", capacity=4, resolution_s=1.0)
    for t in range(100):
        buf.record(1.0, t=float(t))
        buf.record(1.0, t=float(t) + 0.5)  # same bucket: no growth
    assert len(buf) == 4
    assert buf.points() == [(96.0, 2.0), (97.0, 2.0), (98.0, 2.0), (99.0, 2.0)]


def test_ring_buffer_out_of_order_points_fold_or_drop() -> None:
    buf = RingBuffer(kind="sum", capacity=8, resolution_s=1.0)
    buf.record(1.0, t=10.0)
    buf.record(1.0, t=13.0)
    buf.record(1.0, t=10.4)  # late echo of an in-window bucket: folds
    buf.record(1.0, t=11.0)  # in-window gap: inserted in order
    buf.record(1.0, t=3.0)   # older than the window start: dropped
    assert buf.points() == [(10.0, 2.0), (11.0, 1.0), (13.0, 1.0)]


def test_ring_buffer_window_and_rate() -> None:
    buf = RingBuffer(kind="sum", resolution_s=1.0)
    for t in range(20):
        buf.record(2.0, t=float(t))
    assert buf.window(now=19.0, seconds=4.0) == [2.0] * 5
    assert buf.rate_per_s(now=19.0, seconds=10.0) == pytest.approx(2.2)
    assert buf.rate_per_s(now=19.0, seconds=0.0) == 0.0
    assert buf.last() == 2.0
    assert math.isnan(RingBuffer().last())


def test_ring_buffer_validates_parameters() -> None:
    with pytest.raises(ValueError):
        RingBuffer(kind="avg")
    with pytest.raises(ValueError):
        RingBuffer(capacity=0)
    with pytest.raises(ValueError):
        RingBuffer(resolution_s=0.0)


def test_store_series_kind_is_fixed_at_creation() -> None:
    store = TimeSeriesStore()
    first = store.series("serve.qps.fp", kind="sum")
    again = store.series("serve.qps.fp", kind="max")  # kind ignored
    assert again is first
    assert again.kind == "sum"
    assert "serve.qps.fp" in store
    assert store.names() == ["serve.qps.fp"]
    store.clear()
    assert len(store) == 0


# ----------------------------------------------------------------------
# Deterministic trace sampling
# ----------------------------------------------------------------------

def test_trace_sampling_is_deterministic_and_evenly_spaced() -> None:
    sampled = [seq for seq in range(100) if trace_sampled(seq, 0.25)]
    assert sampled == list(range(3, 100, 4))
    assert [trace_sampled(s, 0.25) for s in range(100)] == [
        trace_sampled(s, 0.25) for s in range(100)
    ]  # pure function of (seq, rate)


@pytest.mark.parametrize("rate,expected", [(0.0, 0), (-1.0, 0), (1.0, 200), (2.0, 200)])
def test_trace_sampling_edge_rates(rate: float, expected: int) -> None:
    assert sum(trace_sampled(s, rate) for s in range(200)) == expected


@given(
    rate=st.floats(min_value=0.01, max_value=0.99),
    n=st.integers(min_value=100, max_value=2000),
)
@settings(max_examples=25, deadline=None)
def test_trace_sampling_hits_the_requested_rate(rate: float, n: int) -> None:
    count = sum(trace_sampled(s, rate) for s in range(n))
    assert count == math.floor(n * rate)  # exact: floor-advance rule


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------

def test_prometheus_name_sanitizes() -> None:
    assert prometheus_name("serve.qps.fp-1") == "repro_serve_qps_fp_1"
    assert prometheus_name("9lives") == "repro__9lives"
    assert prometheus_name("x", prefix="repro_ts_") == "repro_ts_x"


def test_render_prometheus_covers_every_family() -> None:
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(7)
    registry.gauge("analog.dev.rmse.layer1").set(0.25)
    hist = registry.histogram("serve.latency_us")
    for x in range(1, 101):
        hist.observe(float(x))
    store = TimeSeriesStore()
    store.record("serve.qps.fp", 4.0, t=100.0, kind="sum")
    store.series("empty.series", kind="sum")  # zero points: skipped
    text = render_prometheus(registry, store=store, extra={"serve.queue_depth.fp": 3})

    assert "# TYPE repro_serve_requests_total counter" in text
    assert "repro_serve_requests_total 7" in text
    assert "repro_analog_dev_rmse_layer1 0.25" in text
    assert "# TYPE repro_serve_latency_us summary" in text
    assert 'repro_serve_latency_us{quantile="0.5"}' in text
    assert "repro_serve_latency_us_count 100" in text
    assert "repro_serve_latency_us_sum 5050" in text
    assert "repro_ts_serve_qps_fp 4" in text
    assert "repro_ts_empty_series" not in text
    assert "repro_serve_queue_depth_fp 3" in text
    assert text.endswith("\n")
    # counter + gauge + (3 quantiles + sum + count) + ts + extra
    assert sample_count(text) == 9


def test_render_prometheus_formats_non_finite_values() -> None:
    registry = MetricsRegistry()
    registry.gauge("weird.nan").set(float("nan"))
    registry.gauge("weird.inf").set(float("inf"))
    text = render_prometheus(registry)
    assert "repro_weird_nan NaN" in text
    assert "repro_weird_inf +Inf" in text


# ----------------------------------------------------------------------
# Shared table renderer
# ----------------------------------------------------------------------

def test_render_table_aligns_label_left_numbers_right() -> None:
    lines = render_table(["tenant", "qps"], [["fp", 12.5], ["quantized", 3]])
    assert lines == [
        "tenant      qps",
        "fp         12.5",
        "quantized     3",
    ]


def test_render_table_validates_shape() -> None:
    assert render_table([], []) == []
    with pytest.raises(ValueError):
        render_table(["a", "b"], [["only-one"]])
    with pytest.raises(ValueError):
        render_table(["a", "b"], [], align="lx")
    with pytest.raises(ValueError):
        render_table(["a", "b"], [], align="l")


# ----------------------------------------------------------------------
# Lossless snapshots + order-independent merge (the property the
# worker-to-parent telemetry path stands on)
# ----------------------------------------------------------------------

_kinds = st.sampled_from(["sum", "max", "min"])
_points = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63),  # bucket index
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
    ),
    min_size=1,
    max_size=60,
)


@given(kind=_kinds, points=_points)
@settings(max_examples=60, deadline=None)
def test_ring_snapshot_json_round_trip_is_lossless(kind: str, points) -> None:
    buf = RingBuffer(kind=kind, capacity=128, resolution_s=1.0)
    for bucket, value in sorted(points):
        buf.record(value, t=float(bucket))
    state = json.loads(json.dumps(buf.snapshot()))
    clone = RingBuffer.restore(state)
    assert clone.kind == buf.kind
    assert clone.capacity == buf.capacity
    assert clone.resolution_s == buf.resolution_s
    assert clone.points() == buf.points()


@given(
    kind=_kinds,
    points=_points,
    shards=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_ring_merge_is_order_independent(kind, points, shards, seed) -> None:
    """Same observations, any sharding, any merge order: same window."""
    import numpy as np

    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, shards, size=len(points))
    snapshots = []
    for shard in range(shards):
        buf = RingBuffer(kind=kind, capacity=128, resolution_s=1.0)
        mine = [p for p, owner in zip(points, assignment) if owner == shard]
        for bucket, value in sorted(mine):
            buf.record(value, t=float(bucket))
        snapshots.append(buf.snapshot())

    def merged(order) -> list:
        parent = RingBuffer(kind=kind, capacity=128, resolution_s=1.0)
        for index in order:
            parent.merge(snapshots[index])
        return parent.points()

    forward = merged(range(shards))
    backward = merged(reversed(range(shards)))
    assert forward == backward

    serial = RingBuffer(kind=kind, capacity=128, resolution_s=1.0)
    for bucket, value in sorted(points):
        serial.record(value, t=float(bucket))
    assert forward == serial.points()


@given(points=_points)
@settings(max_examples=30, deadline=None)
def test_store_export_merge_round_trips_through_json(points) -> None:
    store = TimeSeriesStore()
    for i, (bucket, value) in enumerate(sorted(points)):
        store.record(f"sig.{i % 3}", value, t=float(bucket), kind="max")
    state = json.loads(json.dumps(store.export_state()))
    clone = TimeSeriesStore()
    clone.merge_state(state)
    assert clone.names() == store.names()
    for name in store.names():
        assert clone.series(name).points() == store.series(name).points()


# ----------------------------------------------------------------------
# repro obs tail: follow-mode JSONL streaming
# ----------------------------------------------------------------------

def test_tail_events_yields_existing_records_without_follow(tmp_path) -> None:
    run = tmp_path / "run"
    run.mkdir()
    with open(run / "events.jsonl", "w") as handle:
        handle.write('{"t": 1.0, "type": "log", "message": "a"}\n')
        handle.write('{"t": 2.0, "type": "log", "message": "b"}\n')
    from repro.obs.sink import tail_events

    records = list(tail_events(run, follow=False))
    assert [r["message"] for r in records] == ["a", "b"]


def test_tail_events_survives_torn_trailing_writes(tmp_path) -> None:
    """A record caught mid-write must surface whole on the next poll."""
    from repro.obs.sink import tail_events

    run = tmp_path / "run"
    run.mkdir()
    path = run / "events.jsonl"
    path.write_text('{"t": 1.0, "type": "log", "message": "first"}\n')

    seen: list[dict] = []
    polls = {"n": 0}

    def stop() -> bool:
        polls["n"] += 1
        if polls["n"] == 1:  # torn write: no trailing newline yet
            with open(path, "a") as handle:
                handle.write('{"t": 2.0, "type": "log", "mess')
        elif polls["n"] == 2:  # the rest of the record lands
            with open(path, "a") as handle:
                handle.write('age": "second"}\n')
        return polls["n"] > 3

    for record in tail_events(run, poll_s=0.0, stop=stop):
        seen.append(record)
    assert [r["message"] for r in seen] == ["first", "second"]


def test_tail_events_tolerates_missing_file_then_finds_it(tmp_path) -> None:
    from repro.obs.sink import tail_events

    run = tmp_path / "run"
    run.mkdir()  # no events.jsonl yet
    polls = {"n": 0}

    def stop() -> bool:
        polls["n"] += 1
        if polls["n"] == 2:
            (run / "events.jsonl").write_text(
                '{"t": 1.0, "type": "log", "message": "late"}\n'
            )
        return polls["n"] > 4

    records = list(tail_events(run, poll_s=0.0, stop=stop))
    assert [r["message"] for r in records] == ["late"]


def test_tail_events_skips_undecodable_complete_lines(tmp_path) -> None:
    from repro.obs.sink import tail_events

    run = tmp_path / "run"
    run.mkdir()
    (run / "events.jsonl").write_text(
        '{"t": 1.0, "type": "log", "message": "good"}\n'
        "{broken json}\n"
        '{"t": 2.0, "type": "log", "message": "after"}\n'
    )
    records = list(tail_events(run, follow=False))
    assert [r["message"] for r in records] == ["good", "after"]


def test_cli_obs_tail_streams_and_validates(tmp_path, capsys) -> None:
    from repro.cli import main

    run = tmp_path / "runs" / "r1"
    run.mkdir(parents=True)
    (run / "manifest.json").write_text("{}")
    (run / "events.jsonl").write_text(
        '{"t": 1.0, "type": "log", "message": "hello"}\n'
        '{"t": 2.0, "type": "mystery_event"}\n'
    )
    code = main(
        ["obs", "tail", "r1", "--root", str(tmp_path / "runs"), "--no-follow"]
    )
    out, err = capsys.readouterr()
    assert code == 1  # schema problem surfaced in the exit code
    printed = [json.loads(line) for line in out.splitlines()]
    assert printed[0]["message"] == "hello"
    assert printed[1]["type"] == "mystery_event"  # streamed anyway
    assert "schema:" in err and "mystery_event" in err


@given(
    samples=st.lists(
        st.floats(
            min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
        ),
        min_size=1,
        max_size=200,
    ),
    cuts=st.lists(st.integers(min_value=0, max_value=200), max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_histogram_export_replays_to_exact_serial_state(samples, cuts) -> None:
    """P² is order-dependent: shard-order replay must equal serial."""
    serial = MetricsRegistry(record_samples=True)
    for x in samples:
        serial.histogram("h").observe(x)

    bounds = sorted({min(c, len(samples)) for c in cuts} | {0, len(samples)})
    parent = MetricsRegistry()
    for start, stop in zip(bounds, bounds[1:]):
        shard = MetricsRegistry(record_samples=True)
        for x in samples[start:stop]:
            shard.histogram("h").observe(x)
        parent.merge_state(json.loads(json.dumps(shard.export_state())))

    assert parent.histogram("h").as_dict() == serial.histogram("h").as_dict()
