"""Golden regression for the analog hot path.

The vectorized stacked-stream kernel must be *bit-identical* (exact
float equality) to the reference per-stream kernel for every Table-I
preset, every predictor backend, with and without guard fallback and
fault injection — that is the numerical contract of the hot-path
optimization.  Likewise the GENIEx blocked-GEMM evaluation must match
its legacy allocating path bit for bit.
"""

import os

import numpy as np
import pytest

from repro.xbar.faults import FaultConfig, GuardConfig, with_faults, with_guard
from repro.xbar.presets import crossbar_preset, load_or_train_geniex, preset_names
from repro.xbar.simulator import (
    KERNEL_MODES,
    CircuitPredictor,
    CrossbarEngine,
    IdealPredictor,
    default_kernel,
)

from tests.conftest import make_tiny_crossbar_config

PRESETS = preset_names()


def _weight_and_inputs(config, seed=0, out_features=10, batch=4, signed=True):
    """A weight spanning two ragged row banks plus a test batch."""
    rng = np.random.default_rng(seed)
    in_features = config.rows + 13
    weight = rng.normal(0, 0.4, size=(out_features, in_features)).astype(np.float32)
    x = rng.normal(size=(batch, in_features)).astype(np.float64)
    if not signed:
        x = np.abs(x)
    x[0, -3:] = 0.0  # give the trailing bank some zero entries
    return weight, x


def _engine(weight, config, predictor, kernel, seed=11):
    """Build one engine whose *entire* life (including the construction-
    time gain calibration) runs under the requested kernel."""
    previous = os.environ.get("REPRO_XBAR_KERNEL")
    os.environ["REPRO_XBAR_KERNEL"] = kernel
    try:
        return CrossbarEngine(weight, config, predictor, np.random.default_rng(seed))
    finally:
        if previous is None:
            del os.environ["REPRO_XBAR_KERNEL"]
        else:
            os.environ["REPRO_XBAR_KERNEL"] = previous


def _assert_kernels_bitwise_equal(weight, config, predictor, x):
    ref = _engine(weight, config, predictor, "reference")
    vec = _engine(weight, config, predictor, "vectorized")
    assert ref.kernel == "reference" and vec.kernel == "vectorized"
    # Gains were calibrated through the respective kernels at build time.
    assert np.array_equal(ref.gain, vec.gain)
    out_ref = ref.matvec(x)
    out_vec = vec.matvec(x)
    assert np.array_equal(out_ref, out_vec), (
        f"kernels diverge: max |delta| = {np.abs(out_ref - out_vec).max()}"
    )
    return ref, vec


class TestGoldenKernelEquality:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_geniex_bitwise(self, preset):
        config = crossbar_preset(preset)
        weight, x = _weight_and_inputs(config, signed=True)
        _assert_kernels_bitwise_equal(weight, config, load_or_train_geniex(config), x)

    @pytest.mark.parametrize("preset", PRESETS)
    def test_ideal_bitwise(self, preset):
        config = crossbar_preset(preset)
        weight, x = _weight_and_inputs(config, seed=1, signed=True)
        _assert_kernels_bitwise_equal(weight, config, IdealPredictor(), x)

    @pytest.mark.parametrize("preset", PRESETS)
    def test_circuit_bitwise(self, preset):
        import dataclasses

        # No probe calibration: circuit solves are the expensive part.
        config = dataclasses.replace(crossbar_preset(preset), gain_calibration=0)
        weight, x = _weight_and_inputs(config, seed=2, batch=2, signed=False)
        _assert_kernels_bitwise_equal(weight, config, CircuitPredictor(config), x)

    @pytest.mark.parametrize("guard_mode", ["off", "fallback"])
    @pytest.mark.parametrize("preset", PRESETS)
    def test_guard_modes_bitwise(self, preset, guard_mode):
        """Guard off and a force-tripped fallback must both be exact.

        ``saturation_factor=1e-9`` trips the guard on every evaluated
        stream, so the fallback substitution path itself is compared.
        """
        guard = GuardConfig(
            mode=guard_mode,
            saturation_factor=1e-9 if guard_mode == "fallback" else None,
        )
        config = with_guard(crossbar_preset(preset), guard)
        weight, x = _weight_and_inputs(config, seed=3, signed=True)
        ref, vec = _assert_kernels_bitwise_equal(
            weight, config, load_or_train_geniex(crossbar_preset(preset)), x
        )
        assert ref.guard_trips == vec.guard_trips
        if guard_mode == "fallback":
            assert vec.guard_trips > 0  # the fallback path really ran

    def test_faults_bitwise(self):
        """Stuck cells, drift and dead lines keep the kernels in lockstep."""
        faults = FaultConfig(
            stuck_at_gmin_rate=0.05,
            stuck_at_gmax_rate=0.02,
            drift_time=1e3,
            dead_row_rate=0.02,
            dead_col_rate=0.02,
            seed=3,
        )
        config = with_faults(crossbar_preset("32x32_100k"), faults)
        weight, x = _weight_and_inputs(config, seed=4, signed=True)
        predictor = load_or_train_geniex(crossbar_preset("32x32_100k"))
        ref, vec = _assert_kernels_bitwise_equal(weight, config, predictor, x)
        assert ref.fault_summary == vec.fault_summary
        assert vec.fault_summary.stuck_gmin + vec.fault_summary.stuck_gmax > 0


class TestGENIExBlockModes:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_gemm_matches_legacy_bitwise(self, preset):
        config = crossbar_preset(preset)
        geniex = load_or_train_geniex(config)
        weight, x = _weight_and_inputs(config, seed=5, signed=True)
        engine = CrossbarEngine(weight, config, geniex, np.random.default_rng(11))
        assert geniex.block_mode == "gemm"
        out_gemm = engine.matvec(x)
        geniex.block_mode = "legacy"
        try:
            out_legacy = engine.matvec(x)
        finally:
            geniex.block_mode = "gemm"
        assert np.array_equal(out_gemm, out_legacy)

    def test_small_chunks_bitwise(self, tiny_geniex, rng):
        """Forcing many tiny blocks must not change a single bit."""
        config = make_tiny_crossbar_config()
        weight = rng.normal(0, 0.4, size=(5, 12)).astype(np.float32)
        engine = CrossbarEngine(weight, config, tiny_geniex)
        bank = engine.banks[0]
        voltages = rng.random((9, config.rows))
        full = tiny_geniex.predict_from_bias(voltages, bank.handle)
        blocked = tiny_geniex.predict_from_bias(voltages, bank.handle, chunk=2)
        assert np.array_equal(full, blocked)


class TestPredictorChunkContract:
    """The satellite fix: every backend honors the ``chunk`` argument."""

    def test_ideal_predictor_chunks_bitwise(self, rng):
        bias = rng.standard_normal((8, 6))
        v = rng.random((11, 8))
        full = IdealPredictor.predict_from_bias(v, bias, chunk=10_000)
        blocked = IdealPredictor.predict_from_bias(v, bias, chunk=3)
        assert np.array_equal(full, blocked)

    def test_circuit_predictor_chunks_bitwise(self, rng):
        config = make_tiny_crossbar_config()
        predictor = CircuitPredictor(config)
        g = np.full((8, 8), config.device.g_min) * rng.integers(1, 4, size=(8, 8))
        handle = predictor.prepare_crossbar(g, used_cols=5)
        v = rng.random((7, 8)) * config.device.v_read
        full = predictor.predict_from_bias(v, handle, chunk=10_000)
        blocked = predictor.predict_from_bias(v, handle, chunk=2)
        assert full.shape == (7, 5)
        assert np.array_equal(full, blocked)


class TestKernelSelection:
    def test_env_override(self, monkeypatch, rng):
        monkeypatch.setenv("REPRO_XBAR_KERNEL", "reference")
        assert default_kernel() == "reference"
        config = make_tiny_crossbar_config(gain_calibration=0)
        weight = rng.normal(size=(3, 8)).astype(np.float32)
        engine = CrossbarEngine(weight, config, IdealPredictor())
        assert engine.kernel == "reference"

    def test_invalid_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_XBAR_KERNEL", "warp-speed")
        with pytest.raises(ValueError, match="REPRO_XBAR_KERNEL"):
            default_kernel()

    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv("REPRO_XBAR_KERNEL", raising=False)
        assert default_kernel() == "vectorized"
        assert set(KERNEL_MODES) == {"vectorized", "reference"}


class TestCompiledKernels:
    """The optional C kernels must be bit-identical to their numpy
    equivalents and transparently optional."""

    def test_vectorized_matches_with_kernels_disabled(self, monkeypatch):
        from repro.xbar import _ckernels

        config = crossbar_preset("32x32_100k")
        geniex = load_or_train_geniex(config)
        weight, x = _weight_and_inputs(config, seed=6, signed=True)
        engine = _engine(weight, config, geniex, "vectorized")
        out_fast = engine.matvec(x)
        monkeypatch.setattr(_ckernels, "available", lambda: False)
        out_numpy = engine.matvec(x)
        assert np.array_equal(out_fast, out_numpy)

    def test_env_kill_switch(self, monkeypatch):
        from repro.xbar import _ckernels

        monkeypatch.setenv("REPRO_XBAR_CKERNELS", "0")
        monkeypatch.setattr(_ckernels, "_tried", False)
        monkeypatch.setattr(_ckernels, "_lib", None)
        assert not _ckernels.available()
        i_frac = np.zeros((2, 3), dtype=np.float32)
        v_frac = np.zeros((2, 1), dtype=np.float32)
        assert _ckernels.poly_backbone(i_frac, v_frac, np.zeros(5)) is None

    def test_dequant_dots_matches_numpy_chain(self, rng):
        from repro.xbar import _ckernels

        if not _ckernels.available():
            pytest.skip("no C compiler in this environment")
        full_scale, g_min, denom = 0.004, 3e-5, 2e-6
        for bits in (None, 6):
            lsb = full_scale / (2**bits - 1) if bits is not None else 1.0
            cur = rng.normal(0, full_scale, size=(9, 7))
            cur[0, :4] = [-0.0, np.nan, np.inf, full_scale * 3]
            v_sum = rng.random((9, 1))
            v_sum[1, 0] = 0.0
            colw = rng.choice([-4.0, 1.0, 8.0], size=7)
            if bits is None:
                q = np.asarray(cur)
            else:
                q = np.rint(np.clip(cur, 0.0, full_scale) / lsb) * lsb
            expected = ((q - g_min * v_sum) / denom) * colw
            got, sick = _ckernels.dequant_dots(
                cur, v_sum, colw, adc_bits=bits, full_scale=full_scale,
                lsb=lsb, g_min=g_min, denom=denom,
            )
            assert not sick  # no health check requested
            assert np.array_equal(expected, got, equal_nan=True)
            # The fused health probe flags the injected NaN/inf rows.
            _got, sick = _ckernels.dequant_dots(
                cur, v_sum, colw, adc_bits=bits, full_scale=full_scale,
                lsb=lsb, g_min=g_min, denom=denom, check=1,
            )
            assert sick

    def test_geniex_tail_matches_numpy_chain(self, rng):
        from repro.xbar import _ckernels

        if not _ckernels.available():
            pytest.skip("no C compiler in this environment")
        ideal = rng.normal(0, 1e-3, size=(6, 5)).astype(np.float32)
        deviation = rng.normal(0, 1, size=(6, 5)).astype(np.float32)
        v_frac = rng.random((6, 1)).astype(np.float32)
        poly = rng.normal(0, 0.1, size=5)
        i_norm, std, mean = 0.02, 0.7, -0.05
        dev = deviation * std + mean
        i_frac = (ideal / np.float32(i_norm)).astype(np.float32, copy=False)
        p = (
            poly[0] + poly[1] * i_frac + poly[2] * i_frac * i_frac
            + poly[3] * v_frac + poly[4] * i_frac * v_frac
        )
        expected = ideal - (dev + p) * i_norm
        got = _ckernels.geniex_tail(ideal, deviation, v_frac, poly, i_norm, std, mean)
        assert np.array_equal(expected, got)

    def test_axpy_block_matches_numpy(self, rng):
        from repro.xbar import _ckernels

        if not _ckernels.available():
            pytest.skip("no C compiler in this environment")
        out = rng.normal(size=(5, 12))
        src = rng.normal(size=(5, 20))
        expected = out.copy()
        expected[:, 3:9] += 0.125 * src[:, 10:16]
        assert _ckernels.axpy_block(out[:, 3:9], src[:, 10:16], 0.125)
        assert np.array_equal(expected, out)


class TestPerfCounters:
    def test_counters_track_streams_and_calls(self, rng):
        config = make_tiny_crossbar_config(gain_calibration=0)
        weight = rng.normal(0, 0.4, size=(4, 20)).astype(np.float32)  # 3 banks
        engine = CrossbarEngine(weight, config, IdealPredictor())
        x = rng.random((6, 20))
        x[:, 8:] = 0.0  # banks 2 and 3 see all-zero streams
        engine.matvec(x)
        perf = engine.perf
        assert perf.matvec_calls == 1
        assert perf.matvec_rows == 6
        # Bank 1 evaluated in one stacked call; banks 2-3 fully skipped.
        assert perf.bank_evals == 1
        num_streams = config.bitslice.num_streams
        assert perf.streams_evaluated == num_streams
        assert perf.streams_skipped == 2 * num_streams
        assert perf.predictor_seconds >= 0.0
        perf.reset()
        assert perf.matvec_calls == 0 and perf.streams_evaluated == 0

    def test_merge_and_as_dict(self):
        from repro.xbar.perf import PerfCounters

        a = PerfCounters(matvec_calls=1, streams_evaluated=4, predictor_seconds=0.5)
        b = PerfCounters(matvec_calls=2, streams_skipped=3, predictor_seconds=0.25)
        a.merge(b)
        assert a.matvec_calls == 3
        assert a.streams_evaluated == 4 and a.streams_skipped == 3
        assert a.as_dict()["predictor_seconds"] == pytest.approx(0.75)
        assert "streams" in a.format()


class TestLargeBatchCompaction:
    """Regression: GENIEx stacked/compacted evaluation vs. the reference.

    With enough stacked rows the predictor's BLAS matmuls used to switch
    micro-kernels, so the vectorized kernel (one big packed batch plus a
    cached zero-row substitute) drifted from the reference kernel (one
    ``(n, rows)`` call per stream) by ~1e6 ULP after dequantization.
    Surfaced by the differential oracle harness; fixed by making the
    predictor matmuls row-stable (see repro.xbar.numerics).
    """

    def test_geniex_bitwise_single_row(self, tiny_geniex):
        """n=1 is the smallest reproduction: the reference kernel's
        per-stream single-row predictor calls take BLAS's gemv dispatch
        while the stacked kernel's two-row batch takes gemm."""
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(7, 10)).astype(np.float32)
        x = rng.random((1, 10))
        config = make_tiny_crossbar_config(adc_bits=None, gain_calibration=8)
        _assert_kernels_bitwise_equal(weight, config, tiny_geniex, x)

    def test_geniex_bitwise_across_kernels(self, tiny_geniex):
        config = make_tiny_crossbar_config(adc_bits=None, gain_calibration=8)
        weight, x = _weight_and_inputs(config, seed=3, batch=10)
        x[4] = 0.0  # exercise zero-row compaction and the cached currents
        x[6, : config.rows] = 0.0
        _assert_kernels_bitwise_equal(weight, config, tiny_geniex, x)

    def test_geniex_bitwise_with_adc(self, tiny_geniex):
        config = make_tiny_crossbar_config(adc_bits=6, gain_calibration=8)
        weight, x = _weight_and_inputs(config, seed=4, batch=12)
        x[0] = 0.0
        _assert_kernels_bitwise_equal(weight, config, tiny_geniex, x)
