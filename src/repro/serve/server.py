"""The asyncio analog-inference server.

:class:`AnalogServer` glues the pieces together: requests enter through
:meth:`submit` (admission-controlled — a full queue raises a **typed**
:class:`ServerOverloaded`, it never silently drops a future), coalesce
in the :class:`MicroBatcher`, and are served by a single background
collector that dispatches each cut batch to one of ``lanes`` dedicated
one-thread executors (the *inference lanes*): the event loop stays
responsive during multi-millisecond analog forwards, and with more than
one lane, batches for different tenants overlap in wall time (each
lane's batches fan out through the shared :mod:`repro.parallel` pool,
whose per-worker model replicas were materialized once from the shm
arena).  The obs trace recorder keeps one span stack *per thread*, so
every lane emits balanced, correctly nested spans.

Tenant→lane assignment is a pure function of the tenant name
(``crc32(name) % lanes``): a tenant's batches always execute on the
same lane, in cut order, so its engine state (drift pulses, maintenance
ticks, calibration scratch) is single-threaded no matter how many lanes
exist — which, together with pinned-DAC batch-composition independence,
keeps served logits bit-identical at any lane count.

Drift accounting rides along for free: every served row advances the
engines' pulse counters into a **per-lane ledger** (merged as integer
sums — order-independent — for stats and drift epochs), and per-tenant
maintenance (an attached
:class:`repro.lifecycle.RecalibrationScheduler`) ticks on the tenant's
lane **between** micro-batches once enough pulses have accumulated —
never inside one, so drift-epoch sync points can't split a batch.

The coalescing-identity contract (a request's logits do not depend on
its batch-mates — bit for bit) is established by the engine's serving
mode (:func:`repro.serve.pin_for_serving`); with it, the batch axis can
also be sharded across the :mod:`repro.parallel` pool without changing
a single bit of any response.
"""

from __future__ import annotations

import asyncio
import math
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.obs import runtime as _obs_runtime
from repro.obs.metrics import REGISTRY, Histogram
from repro.obs.trace import span as _span
from repro.serve.batching import MicroBatch, MicroBatcher, QueueFull
from repro.serve.registry import ModelRegistry


class ServeError(Exception):
    """Base class of every typed serving rejection."""

    reason = "error"


class ServerOverloaded(ServeError):
    """Admission denied: the bounded request queue is full."""

    reason = "overloaded"


class UnknownModel(ServeError):
    """The request named a tenant the registry has never heard of."""

    reason = "unknown_model"


class InvalidImage(ServeError):
    """The request's image does not match the tenant's input shape."""

    reason = "invalid_image"


class ServerClosed(ServeError):
    """The server is not accepting requests (stopped or never started)."""

    reason = "closed"


@dataclass(frozen=True)
class ServeConfig:
    """Serving knobs (see DESIGN.md §9 for the queueing model)."""

    #: Largest micro-batch one model invocation may serve.
    max_batch: int = 8
    #: Longest a request may wait for batch-mates before the cut.
    max_wait_us: float = 2000.0
    #: Admission bound on requests in flight (queued, not yet served).
    queue_limit: int = 64
    #: Shard the micro-batch axis across the parallel backend's pool
    #: (no-op under the serial backend; bit-identical either way).
    shard_batches: bool = True
    #: Parallel inference lanes.  Tenants map to lanes deterministically
    #: (``crc32(name) % lanes``), so any lane count serves bit-identical
    #: logits; more lanes let different tenants' batches overlap.
    lanes: int = 1


@dataclass
class ServeResult:
    """One served request: its logits plus batching telemetry."""

    request_id: int
    model: str
    logits: np.ndarray
    batch_size: int  # size of the micro-batch that served it
    queued_us: float
    infer_us: float


@dataclass
class ServerStats:
    """Aggregate serving statistics (see :meth:`AnalogServer.stats`)."""

    requests: int
    batches: int
    rejected: int
    batching_efficiency: float
    latency_us: dict
    queue_us: dict
    infer_us: dict
    batch_size: dict
    pulses: dict[str, int]
    maintenance_ticks: int

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "rejected": self.rejected,
            "batching_efficiency": self.batching_efficiency,
            "latency_us": self.latency_us,
            "queue_us": self.queue_us,
            "infer_us": self.infer_us,
            "batch_size": self.batch_size,
            "pulses": self.pulses,
            "maintenance_ticks": self.maintenance_ticks,
        }

    def format(self) -> str:
        lat = self.latency_us
        return (
            f"requests={self.requests} batches={self.batches} "
            f"rejected={self.rejected} "
            f"batching_efficiency={self.batching_efficiency:.2f} "
            f"latency p50={lat.get('p50', float('nan')) / 1e3:.2f}ms "
            f"p99={lat.get('p99', float('nan')) / 1e3:.2f}ms"
        )

    def format_table(self) -> str:
        """Latency/queue/infer quantile table (shared renderer)."""
        from repro.obs.summary import render_table

        def row(label: str, hist: dict) -> list:
            return [
                label,
                hist.get("count", 0),
                *(
                    f"{hist.get(key, float('nan')) / 1e3:.2f}"
                    for key in ("p50", "p90", "p99")
                ),
            ]

        lines = render_table(
            ["stage", "n", "p50 ms", "p90 ms", "p99 ms"],
            [
                row("latency", self.latency_us),
                row("queue", self.queue_us),
                row("infer", self.infer_us),
            ],
        )
        return "\n".join(lines)


@dataclass
class _Request:
    """Payload carried through the batcher for one submitted image."""

    request_id: int
    image: np.ndarray
    future: asyncio.Future
    #: End-to-end trace id; propagates into the batch's fan-in links.
    trace_id: str = ""
    #: Whether this request emits a full ``request_trace`` event.
    sampled: bool = False


@dataclass
class _Maintenance:
    """Per-tenant scheduler hook state."""

    scheduler: object
    every_pulses: int
    #: Cheap drift-sync cadence (pulses); 0 leaves sync to full ticks.
    #: Syncing between probe ticks is what lets the anomaly watcher see
    #: drift onset in live signals *before* the periodic probe runs.
    sync_every_pulses: int = 0
    pending: int = 0
    sync_pending: int = 0
    ticks: int = 0
    anomaly_ticks: int = 0


class AnalogServer:
    """Continuous micro-batching front-end over a :class:`ModelRegistry`."""

    def __init__(
        self,
        registry: ModelRegistry,
        config: ServeConfig | None = None,
        telemetry=None,
        lanes: int | None = None,
    ):
        self.registry = registry
        self.config = config or ServeConfig()
        self.lanes = max(1, lanes if lanes is not None else self.config.lanes)
        #: Optional :class:`repro.serve.telemetry.LiveTelemetry`.  The
        #: default (None) path costs one attribute check per call site —
        #: the PR 4 <5% disabled-overhead guard covers serving too.
        self.telemetry = telemetry
        if telemetry is not None:
            for name in registry.names():
                telemetry.register(registry.spec(name))
        self._batcher = MicroBatcher(
            max_batch=self.config.max_batch,
            max_wait_us=self.config.max_wait_us,
            queue_limit=self.config.queue_limit,
        )
        self._lanes: list[ThreadPoolExecutor] = []
        self._collector: asyncio.Task | None = None
        self._running = False
        self._next_id = 0
        self._next_batch_id = 0
        self._latency = Histogram()
        self._queue_wait = Histogram()
        self._infer = Histogram()
        self._batch_sizes = Histogram()
        #: Per-lane drift pulse ledgers.  Each tenant writes only its
        #: own lane's dict (single-threaded by assignment); ``stats()``
        #: merges them as integer sums, which are order-independent, so
        #: drift epochs stay bit-reproducible at any lane count.
        self._lane_pulses: list[dict[str, int]] = [
            {} for _ in range(self.lanes)
        ]
        self._lane_busy_us: list[float] = [0.0] * self.lanes
        self._lane_batches: list[int] = [0] * self.lanes
        self._started_at: float | None = None
        self._maintenance: dict[str, _Maintenance] = {}
        #: Rejections made before the batcher sees the request
        #: (unknown_model / invalid_image); the batcher counts only its
        #: own overload sheds, and ``stats()`` reports the sum.
        self._rejected_presubmit = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AnalogServer":
        if self._running:
            raise RuntimeError("server already started")
        # One single-thread executor per lane: within a lane, batches
        # run strictly in submission (= cut) order, which keeps every
        # tenant's engine state single-threaded.
        self._lanes = [
            ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"serve-lane-{i}")
            for i in range(self.lanes)
        ]
        self._started_at = time.perf_counter()
        self._running = True
        self._collector = asyncio.get_running_loop().create_task(self._run())
        return self

    def lane_for(self, model: str) -> int:
        """Deterministic tenant→lane assignment.

        A pure function of the tenant *name* — independent of
        registration order, traffic, or lane load — so the same tenant
        always lands on the same lane and (for a fixed lane count) the
        same schedule replays identically across runs.
        """
        return zlib.crc32(model.encode("utf-8")) % self.lanes

    async def stop(self) -> "ServerStats":
        """Drain the queue, serve everything in flight, flush stats."""
        collector_error: BaseException | None = None
        if self._running:
            self._running = False
            self._batcher.close()
            try:
                if self._collector is not None:
                    await self._collector
            except BaseException as exc:
                # A dead collector must not skip cleanup: the queue
                # still has to be rejected and the lane shut down.
                collector_error = exc
            finally:
                self._collector = None
                # The collector drains the queue before exiting;
                # anything still queued means it died — reject, never
                # drop.
                for _model, entry in self._batcher.drain():
                    request = entry.payload
                    if not request.future.done():
                        request.future.set_exception(
                            ServerClosed("server stopped")
                        )
                for lane in self._lanes:
                    lane.shutdown(wait=True)
                self._lanes = []
        stats = self.stats()
        _obs_runtime.event(
            "serve_stats",
            requests=stats.requests,
            batches=stats.batches,
            rejected=stats.rejected,
            batching_efficiency=stats.batching_efficiency,
            p50_us=float(stats.latency_us.get("p50", math.nan)),
            p99_us=float(stats.latency_us.get("p99", math.nan)),
        )
        if collector_error is not None:
            raise collector_error
        return stats

    async def __aenter__(self) -> "AnalogServer":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Maintenance hooks
    # ------------------------------------------------------------------
    def attach_scheduler(
        self,
        model: str,
        scheduler,
        every_pulses: int,
        sync_every_pulses: int = 0,
    ) -> None:
        """Tick ``scheduler`` after every ``every_pulses`` served pulses.

        Ticks run on the inference lane between micro-batches, so drift
        sync / refit / reprogramming never land mid-batch.

        ``sync_every_pulses`` adds a cheap drift-sync-only cadence
        between full ticks: conductances then move (and live health
        signals shift) as traffic accumulates, letting the telemetry
        anomaly watcher spot drift onset and trigger the scheduler
        ahead of its periodic probe.
        """
        if every_pulses < 1:
            raise ValueError(f"every_pulses must be >= 1, got {every_pulses}")
        if sync_every_pulses < 0:
            raise ValueError(
                f"sync_every_pulses must be >= 0, got {sync_every_pulses}"
            )
        self.registry.spec(model)  # validate the tenant exists
        self._maintenance[model] = _Maintenance(
            scheduler=scheduler,
            every_pulses=every_pulses,
            sync_every_pulses=sync_every_pulses,
        )

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    async def submit(self, model: str, image: np.ndarray) -> ServeResult:
        """Serve one image; resolves when its micro-batch completes.

        Raises :class:`UnknownModel`, :class:`InvalidImage`,
        :class:`ServerOverloaded` or :class:`ServerClosed` — typed,
        synchronous rejections.  Once this returns an awaitable has
        been queued, and it is guaranteed to resolve (result or
        exception): futures are never dropped.
        """
        if not self._running:
            raise ServerClosed("server is not running")
        if model not in self.registry:
            REGISTRY.counter("serve.rejected.unknown_model").inc()
            self._rejected_presubmit += 1
            raise UnknownModel(f"unknown model {model!r}")
        image = np.asarray(image)
        expected = self.registry.input_shape(model)
        if expected is not None and tuple(image.shape) != expected:
            REGISTRY.counter("serve.rejected.invalid_image").inc()
            self._rejected_presubmit += 1
            if self.telemetry is not None:
                self.telemetry.on_reject(model, "invalid_image")
            raise InvalidImage(
                f"model {model!r} expects image shape {expected}, "
                f"got {tuple(image.shape)}"
            )
        loop = asyncio.get_running_loop()
        seq = self._next_id
        request = _Request(
            request_id=seq,
            image=image,
            future=loop.create_future(),
            trace_id=f"req-{seq:08x}",
            sampled=(
                self.telemetry is not None and self.telemetry.sampled(seq)
            ),
        )
        self._next_id += 1
        try:
            self._batcher.push(model, request)
        except QueueFull as exc:
            REGISTRY.counter("serve.rejected.overloaded").inc()
            if self.telemetry is not None:
                self.telemetry.on_reject(model, "overloaded")
            _obs_runtime.event(
                "serve_reject",
                model=model,
                reason="overloaded",
                queued=len(self._batcher),
            )
            raise ServerOverloaded(str(exc)) from None
        return await request.future

    # ------------------------------------------------------------------
    # Collector + inference lane
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        # At most one uncompleted batch per lane: the collector acquires
        # a slot *before* cutting, so with lanes=1 the cut→serve→cut
        # cadence is exactly the single-lane server's, and with N lanes
        # up to N batches are in flight at once (different tenants
        # overlap; a tenant's own batches still run in cut order on its
        # lane's one thread).
        slots = asyncio.Semaphore(self.lanes)
        outstanding: set[asyncio.Task] = set()
        try:
            while True:
                await slots.acquire()
                batch = await self._batcher.next_batch()
                if batch is None:
                    slots.release()
                    return
                task = loop.create_task(self._dispatch(batch, slots))
                outstanding.add(task)
                task.add_done_callback(outstanding.discard)
        finally:
            # Drain before the collector exits so stop() can rely on
            # "collector done" meaning "every accepted future resolved".
            if outstanding:
                await asyncio.gather(*outstanding)

    async def _dispatch(self, batch: MicroBatch, slots: asyncio.Semaphore) -> None:
        try:
            await self._serve_batch(batch)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # Last-ditch guard: nothing a batch does may kill the
            # collector — that would strand every queued future.
            # Fail this batch's requests and keep serving.
            failure = ServeError(f"serving failed: {exc!r}")
            failure.__cause__ = exc
            for request in batch.payloads:
                if not request.future.done():
                    request.future.set_exception(failure)
        finally:
            slots.release()

    async def _serve_batch(self, batch: MicroBatch) -> None:
        loop = asyncio.get_running_loop()
        requests: list[_Request] = batch.payloads
        queue_depth = len(self._batcher)
        lane = self.lane_for(batch.model)
        start = loop.time()
        try:
            # Batch prep is inside the guard: coalesced images with
            # mismatched shapes make np.stack raise, and that must
            # reject the batch's requests, not unwind the collector.
            images = np.stack([request.image for request in requests])
            logits = await loop.run_in_executor(
                self._lanes[lane], self._infer_batch, batch.model, images, lane
            )
        except ServeError as exc:
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        except Exception as exc:
            failure = ServeError(f"inference failed: {exc!r}")
            failure.__cause__ = exc
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(failure)
            return
        infer_us = (loop.time() - start) * 1e6
        done = loop.time()
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        self._infer.observe(infer_us)
        self._batch_sizes.observe(batch.size)
        REGISTRY.counter("serve.requests").inc(batch.size)
        REGISTRY.counter("serve.batches").inc()
        REGISTRY.histogram("serve.batch_size").observe(batch.size)
        telemetry = self.telemetry
        for index, request in enumerate(requests):
            queued_us = batch.wait_us(request_entry := batch.entries[index])
            latency_us = (done - request_entry.enqueued) * 1e6
            self._queue_wait.observe(queued_us)
            self._latency.observe(latency_us)
            REGISTRY.histogram("serve.latency_us").observe(latency_us)
            if telemetry is not None:
                telemetry.on_request(
                    model=batch.model,
                    trace_id=request.trace_id,
                    batch_id=batch_id,
                    queued_us=queued_us,
                    infer_us=infer_us,
                    total_us=latency_us,
                    sampled=request.sampled,
                )
            result = ServeResult(
                request_id=request.request_id,
                model=batch.model,
                logits=logits[index],
                batch_size=batch.size,
                queued_us=queued_us,
                infer_us=infer_us,
            )
            if not request.future.done():
                request.future.set_result(result)
        if telemetry is not None:
            telemetry.on_batch(
                model=batch.model,
                size=batch.size,
                queue_depth=queue_depth,
                infer_us=infer_us,
                lane=lane,
            )
        _obs_runtime.event(
            "serve_batch",
            model=batch.model,
            size=batch.size,
            queue_depth=queue_depth,
            wait_us=batch.wait_us(batch.entries[0]),
            infer_us=infer_us,
            lane=lane,
            # Fan-in span links: the batch is the join point of every
            # member request's trace (sampled members only, to bound
            # event volume — batch-level telemetry itself is always on).
            batch_id=batch_id,
            traces=[r.trace_id for r in requests if r.sampled],
        )

    def _infer_batch(
        self, model: str, images: np.ndarray, lane: int = 0
    ) -> np.ndarray:
        """Runs on the tenant's inference-lane thread."""
        from repro.attacks.base import predict_logits
        from repro.lifecycle import total_pulses
        from repro.lifecycle.ops import sync_model_drift
        from repro.parallel.backend import get_backend

        lane_start = time.perf_counter()
        entry = self.registry.model(model)
        shard_size = len(images)
        backend = get_backend()
        if self.config.shard_batches and backend.workers > 1:
            # Split the micro-batch across the pool.  Serving-pinned
            # engines are batch-composition independent, so any shard
            # plan yields bit-identical logits.
            shard_size = max(1, math.ceil(len(images) / backend.workers))
        before = total_pulses(entry.model)
        with _span("serve/batch"):
            logits = predict_logits(entry.model, images, batch_size=shard_size)
        delta = total_pulses(entry.model) - before
        ledger = self._lane_pulses[lane]
        ledger[model] = ledger.get(model, 0) + delta
        REGISTRY.counter(f"serve.pulses.{model}").inc(delta)
        maintenance = self._maintenance.get(model)
        if maintenance is not None:
            maintenance.pending += delta
            if maintenance.pending >= maintenance.every_pulses:
                # Carry the overshoot forward so large batches still
                # count toward the next tick (one tick per batch at
                # most; the remainder catches up between later ones).
                maintenance.pending -= maintenance.every_pulses
                maintenance.ticks += 1
                with _span("serve/maintenance"):
                    maintenance.scheduler.tick()
            elif maintenance.sync_every_pulses > 0:
                maintenance.sync_pending += delta
                if maintenance.sync_pending >= maintenance.sync_every_pulses:
                    maintenance.sync_pending -= maintenance.sync_every_pulses
                    with _span("serve/maintenance"):
                        sync_model_drift(entry.model)
        if self.telemetry is not None:
            # Health signals read the logits that already exist; a flag
            # becomes an immediate scheduler probe *here on the lane*,
            # between batches — the observe-then-heal loop never lands
            # inside a micro-batch.
            anomalies = self.telemetry.on_infer(model, logits)
            if anomalies and maintenance is not None:
                for anomaly in anomalies:
                    maintenance.anomaly_ticks += 1
                    maintenance.ticks += 1
                    with _span("serve/maintenance"):
                        maintenance.scheduler.trigger_anomaly(
                            anomaly.signal, anomaly.zscore
                        )
        # Each slot is written only by its own lane thread; readers
        # (live_stats on the loop) see a consistent-enough snapshot.
        self._lane_busy_us[lane] += (time.perf_counter() - lane_start) * 1e6
        self._lane_batches[lane] += 1
        return logits

    # ------------------------------------------------------------------
    def merged_pulses(self) -> dict[str, int]:
        """Per-tenant pulse totals across lane ledgers.

        Integer sums over a deterministic key order — independent of
        which lane served what and of lane count, so the drift-epoch
        arithmetic built on these totals is bit-reproducible.
        """
        merged: dict[str, int] = {}
        for ledger in self._lane_pulses:
            for model, pulses in ledger.items():
                merged[model] = merged.get(model, 0) + pulses
        return dict(sorted(merged.items()))

    def lane_stats(self) -> list[dict]:
        """Per-lane utilization snapshot for ``live_stats``/``repro top``."""
        elapsed_us = (
            (time.perf_counter() - self._started_at) * 1e6
            if self._started_at is not None
            else 0.0
        )
        rows = []
        for lane in range(self.lanes):
            busy_us = self._lane_busy_us[lane]
            rows.append(
                {
                    "lane": lane,
                    "batches": self._lane_batches[lane],
                    "busy_us": busy_us,
                    "utilization": (
                        min(busy_us / elapsed_us, 1.0) if elapsed_us > 0 else 0.0
                    ),
                    "tenants": sorted(
                        name
                        for name in self.registry.names()
                        if self.lane_for(name) == lane
                    ),
                    "pulses": dict(sorted(self._lane_pulses[lane].items())),
                }
            )
        return rows

    @staticmethod
    def _queue_stats() -> dict:
        """Work-stealing scheduler counters (empty under serial backend)."""
        from repro.parallel.backend import get_backend

        queue = getattr(get_backend(), "queue", None)
        if queue is None:
            return {}
        return {**queue.stats.as_dict(), "last": dict(queue.last)}

    def stats(self) -> ServerStats:
        batcher = self._batcher.stats
        return ServerStats(
            requests=batcher.served,
            batches=batcher.batches,
            rejected=batcher.rejected + self._rejected_presubmit,
            batching_efficiency=batcher.batching_efficiency,
            latency_us=self._latency.as_dict(),
            queue_us=self._queue_wait.as_dict(),
            infer_us=self._infer.as_dict(),
            batch_size=self._batch_sizes.as_dict(),
            pulses=self.merged_pulses(),
            maintenance_ticks=sum(
                m.ticks for m in self._maintenance.values()
            ),
        )

    def live_stats(self) -> dict:
        """JSON-ready live snapshot for ``{"op": "stats"}`` / ``repro top``.

        Combines the aggregate counters with per-tenant telemetry
        (latency quantiles, qps, SLO budgets), live queue depths, drift
        pulse counts and maintenance/anomaly state.  Read-only.
        """
        payload: dict = {
            "server": self.stats().as_dict(),
            "tenants": {},
            "queues": {
                name: self._batcher.queue_depth(name)
                for name in self.registry.names()
            },
            "lanes": self.lane_stats(),
            "queue": self._queue_stats(),
            "maintenance": {},
        }
        if self.telemetry is not None:
            payload["tenants"] = self.telemetry.tenant_stats()
            payload["health"] = self.telemetry.health_stats()
        for model, maintenance in self._maintenance.items():
            entry: dict = {
                "ticks": maintenance.ticks,
                "anomaly_ticks": maintenance.anomaly_ticks,
                "pending_pulses": maintenance.pending,
            }
            scheduler_stats = getattr(maintenance.scheduler, "stats", None)
            if callable(scheduler_stats):
                entry["scheduler"] = scheduler_stats()
            payload["maintenance"][model] = entry
        return payload
