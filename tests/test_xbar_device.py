"""RRAM device model tests."""

import numpy as np
import pytest

from repro.xbar.device import DeviceConfig, RRAMDevice


class TestDeviceConfig:
    def test_derived_quantities(self):
        cfg = DeviceConfig(r_on=100e3, on_off_ratio=50.0, levels_bits=2)
        assert cfg.r_off == pytest.approx(5e6)
        assert cfg.g_max == pytest.approx(1e-5)
        assert cfg.g_min == pytest.approx(2e-7)
        assert cfg.num_levels == 4
        assert cfg.g_step == pytest.approx((cfg.g_max - cfg.g_min) / 3)


class TestProgramming:
    def test_level_to_conductance_endpoints(self):
        dev = RRAMDevice(DeviceConfig(levels_bits=2))
        cfg = dev.config
        g = dev.level_to_conductance(np.array([0, cfg.num_levels - 1]))
        np.testing.assert_allclose(g, [cfg.g_min, cfg.g_max])

    def test_levels_out_of_range_raise(self):
        dev = RRAMDevice(DeviceConfig(levels_bits=2))
        with pytest.raises(ValueError):
            dev.level_to_conductance(np.array([4]))
        with pytest.raises(ValueError):
            dev.level_to_conductance(np.array([-1]))

    def test_quantization_roundtrip(self, rng):
        dev = RRAMDevice(DeviceConfig(levels_bits=3))
        levels = rng.integers(0, 8, size=(5, 5))
        recovered = dev.conductance_to_level(dev.level_to_conductance(levels))
        np.testing.assert_array_equal(recovered, levels)

    def test_program_without_noise_is_exact(self):
        dev = RRAMDevice(DeviceConfig(program_sigma=0.0))
        levels = np.array([0, 1, 2, 3])
        np.testing.assert_allclose(dev.program(levels), dev.level_to_conductance(levels))

    def test_program_noise_requires_rng(self):
        dev = RRAMDevice(DeviceConfig(program_sigma=0.1))
        with pytest.raises(ValueError):
            dev.program(np.array([1]))

    def test_program_noise_stays_in_physical_range(self, rng):
        dev = RRAMDevice(DeviceConfig(program_sigma=0.5, levels_bits=2))
        g = dev.program(rng.integers(0, 4, size=1000), rng)
        assert g.min() >= dev.config.g_min
        assert g.max() <= dev.config.g_max

    def test_program_noise_varies(self, rng):
        dev = RRAMDevice(DeviceConfig(program_sigma=0.1))
        levels = np.full(100, 2)
        g = dev.program(levels, rng)
        assert np.unique(g).size > 1


class TestIVCharacteristic:
    def test_linear_device_is_ohmic(self):
        dev = RRAMDevice(DeviceConfig(iv_beta=0.0))
        g = np.array([1e-5])
        v = np.array([0.1])
        np.testing.assert_allclose(dev.current(g, v), g * v)

    def test_sinh_matches_ohm_at_read_voltage(self):
        """Chord conductance at V = v_read equals programmed G."""
        cfg = DeviceConfig(iv_beta=0.5, v_read=0.25)
        dev = RRAMDevice(cfg)
        g = np.array([5e-6])
        i = dev.current(g, np.array([cfg.v_read]))
        np.testing.assert_allclose(i, g * cfg.v_read, rtol=1e-12)

    def test_sublinear_below_read_voltage(self):
        """sinh characteristic: chord conductance drops at lower V."""
        cfg = DeviceConfig(iv_beta=1.0, v_read=0.25)
        dev = RRAMDevice(cfg)
        g = np.array([5e-6])
        half = dev.current(g, np.array([cfg.v_read / 2]))
        assert half[0] < g[0] * cfg.v_read / 2

    def test_effective_conductance_at_zero_voltage(self):
        cfg = DeviceConfig(iv_beta=0.5)
        dev = RRAMDevice(cfg)
        g = np.array([1e-5])
        eff = dev.effective_conductance(g, np.array([0.0]))
        expected = g * cfg.iv_beta / np.sinh(cfg.iv_beta)
        np.testing.assert_allclose(eff, expected, rtol=1e-9)

    def test_effective_conductance_linear_device(self):
        dev = RRAMDevice(DeviceConfig(iv_beta=0.0))
        g = np.array([1e-5])
        np.testing.assert_allclose(dev.effective_conductance(g, np.array([0.1])), g)

    def test_current_is_odd_function(self):
        dev = RRAMDevice(DeviceConfig(iv_beta=0.7))
        g = np.array([1e-5])
        v = np.array([0.1])
        np.testing.assert_allclose(dev.current(g, v), -dev.current(g, -v))
