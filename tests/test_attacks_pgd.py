"""PGD / FGSM attack tests: constraints, effectiveness, Eq. 4 semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.base import clip_to_ball, loss_and_grad, margin_loss, predict_logits
from repro.attacks.pgd import FGSM, PGD


class TestBaseUtilities:
    def test_predict_logits_matches_forward(self, tiny_victim, tiny_task):
        from repro.autograd import Tensor

        x = tiny_task.x_test[:8]
        direct = tiny_victim(Tensor(x)).data
        np.testing.assert_allclose(predict_logits(tiny_victim, x), direct, rtol=1e-5)

    def test_predict_logits_batches_consistently(self, tiny_victim, tiny_task):
        x = tiny_task.x_test[:10]
        np.testing.assert_allclose(
            predict_logits(tiny_victim, x, batch_size=3),
            predict_logits(tiny_victim, x, batch_size=10),
            rtol=1e-5,
        )

    def test_loss_and_grad_shapes(self, tiny_victim, tiny_task):
        x, y = tiny_task.x_test[:4], tiny_task.y_test[:4]
        loss, grad = loss_and_grad(tiny_victim, x, y)
        assert np.isfinite(loss)
        assert grad.shape == x.shape

    def test_margin_loss_sign_tracks_correctness(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0]])
        labels = np.array([0, 0])
        margins = margin_loss(logits, labels)
        assert margins[0] > 0  # correct
        assert margins[1] < 0  # misclassified

    def test_clip_to_ball_respects_epsilon_and_domain(self, rng):
        x = rng.random((4, 2, 3, 3)).astype(np.float32)
        x_adv = x + rng.normal(0, 1.0, size=x.shape).astype(np.float32)
        clipped = clip_to_ball(x_adv, x, epsilon=0.1)
        assert (np.abs(clipped - x) <= 0.1 + 1e-6).all()
        assert clipped.min() >= 0.0 and clipped.max() <= 1.0


class TestPGD:
    def test_constraints_hold(self, tiny_victim, tiny_task):
        x, y = tiny_task.x_test[:12], tiny_task.y_test[:12]
        eps = 8 / 255
        result = PGD(eps, iterations=3).generate(tiny_victim, x, y)
        assert (np.abs(result.x_adv - x) <= eps + 1e-6).all()
        assert result.x_adv.min() >= 0.0 and result.x_adv.max() <= 1.0
        assert result.x_adv.dtype == np.float32

    def test_epsilon_zero_is_identity(self, tiny_victim, tiny_task):
        x, y = tiny_task.x_test[:6], tiny_task.y_test[:6]
        result = PGD(0.0, iterations=2).generate(tiny_victim, x, y)
        np.testing.assert_allclose(result.x_adv, x)

    def test_attack_reduces_accuracy(self, tiny_victim, tiny_task):
        from repro.core.evaluation import adversarial_accuracy

        x, y = tiny_task.x_test[:40], tiny_task.y_test[:40]
        clean = adversarial_accuracy(tiny_victim, x, y)
        result = PGD(32 / 255, iterations=5).generate(tiny_victim, x, y)
        attacked = adversarial_accuracy(tiny_victim, result.x_adv, y)
        assert attacked < clean

    def test_stronger_epsilon_is_stronger_attack(self, tiny_victim, tiny_task):
        from repro.core.evaluation import adversarial_accuracy

        x, y = tiny_task.x_test[:40], tiny_task.y_test[:40]
        weak = PGD(4 / 255, iterations=4).generate(tiny_victim, x, y)
        strong = PGD(48 / 255, iterations=4).generate(tiny_victim, x, y)
        assert adversarial_accuracy(tiny_victim, strong.x_adv, y) <= adversarial_accuracy(
            tiny_victim, weak.x_adv, y
        )

    def test_iterative_beats_single_step(self, tiny_victim, tiny_task):
        from repro.core.evaluation import adversarial_accuracy

        x, y = tiny_task.x_test[:60], tiny_task.y_test[:60]
        eps = 16 / 255
        fgsm = FGSM(eps).generate(tiny_victim, x, y)
        pgd = PGD(eps, iterations=8).generate(tiny_victim, x, y)
        assert adversarial_accuracy(tiny_victim, pgd.x_adv, y) <= adversarial_accuracy(
            tiny_victim, fgsm.x_adv, y
        ) + 1e-9

    def test_default_alpha_follows_madry_rule(self):
        attack = PGD(0.1, iterations=10)
        assert attack.alpha == pytest.approx(2.5 * 0.1 / 10)

    def test_queries_metadata(self, tiny_victim, tiny_task):
        x, y = tiny_task.x_test[:4], tiny_task.y_test[:4]
        result = PGD(4 / 255, iterations=3).generate(tiny_victim, x, y)
        assert (result.queries == 3).all()
        assert result.metadata["epsilon"] == pytest.approx(4 / 255)

    def test_success_flags_match_model_predictions(self, tiny_victim, tiny_task):
        x, y = tiny_task.x_test[:10], tiny_task.y_test[:10]
        result = PGD(16 / 255, iterations=3).generate(tiny_victim, x, y)
        predictions = predict_logits(tiny_victim, result.x_adv).argmax(axis=1)
        np.testing.assert_array_equal(result.success, predictions != y)

    def test_random_start_stays_in_ball(self, tiny_victim, tiny_task):
        x, y = tiny_task.x_test[:6], tiny_task.y_test[:6]
        eps = 8 / 255
        result = PGD(eps, iterations=2, random_start=True).generate(tiny_victim, x, y)
        assert (np.abs(result.x_adv - x) <= eps + 1e-6).all()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PGD(-0.1)
        with pytest.raises(ValueError):
            PGD(0.1, iterations=0)

    def test_deterministic_without_random_start(self, tiny_victim, tiny_task):
        x, y = tiny_task.x_test[:6], tiny_task.y_test[:6]
        a = PGD(8 / 255, iterations=2).generate(tiny_victim, x, y)
        b = PGD(8 / 255, iterations=2).generate(tiny_victim, x, y)
        np.testing.assert_allclose(a.x_adv, b.x_adv)


@settings(max_examples=8, deadline=None)
@given(
    eps_num=st.integers(min_value=1, max_value=40),
    iters=st.integers(min_value=1, max_value=4),
)
def test_property_pgd_never_violates_constraints(eps_num, iters):
    """For any (epsilon, iterations): ball + [0,1] constraints hold."""
    # hypothesis and function-scoped fixtures don't mix: build inline.
    from repro.nn.resnet import build_model

    rng = np.random.default_rng(0)
    model = build_model("resnet20", num_classes=3, width=4, seed=0)
    model.eval()
    x = rng.random((4, 3, 8, 8)).astype(np.float32)
    y = np.array([0, 1, 2, 0])
    eps = eps_num / 255
    result = PGD(eps, iterations=iters).generate(model, x, y)
    assert (np.abs(result.x_adv - x) <= eps + 1e-6).all()
    assert result.x_adv.min() >= 0.0 and result.x_adv.max() <= 1.0
