"""Analytic noise model (fast ablation backend) tests."""

import numpy as np
import pytest

from repro.xbar.circuit import CrossbarCircuit
from repro.xbar.nf import non_ideality_factor, sample_crossbar_workload
from repro.xbar.noise import GaussianNoiseModel, calibrated_noise_model

from tests.conftest import make_tiny_crossbar_config


@pytest.fixture(scope="module")
def fitted_model():
    config = make_tiny_crossbar_config()
    model = calibrated_noise_model(
        config.circuit, config.device, num_matrices=8, vectors_per_matrix=6
    )
    return config, model


class TestCalibration:
    def test_coefficients_capture_ir_drop(self, fitted_model):
        _config, model = fitted_model
        # Deviation grows with drive: the i_frac coefficient dominates
        # and is positive for an IR-drop-limited crossbar.
        assert model.c1 > 0

    def test_residual_sigma_recorded(self, fitted_model):
        _config, model = fitted_model
        assert model.sigma >= 0


class TestPrediction:
    def test_tracks_circuit_nf(self, fitted_model, rng):
        config, model = fitted_model
        solver = CrossbarCircuit(config.circuit, config.device)
        ideals, actuals, predicted = [], [], []
        for voltages, conductances in sample_crossbar_workload(
            config.device, 8, 8, rng, 4, 6
        ):
            ideals.append(solver.ideal_currents(voltages, conductances))
            actuals.append(solver.solve(voltages, conductances))
            predicted.append(model.predict(voltages, conductances))
        nf_true = non_ideality_factor(np.concatenate(ideals), np.concatenate(actuals))
        nf_model = non_ideality_factor(np.concatenate(ideals), np.concatenate(predicted))
        assert abs(nf_model - nf_true) < 0.5 * nf_true

    def test_deterministic_without_jitter(self, fitted_model, rng):
        config, model = fitted_model
        (voltages, conductances), = sample_crossbar_workload(config.device, 8, 8, rng, 1, 3)
        np.testing.assert_allclose(
            model.predict(voltages, conductances), model.predict(voltages, conductances)
        )

    def test_jitter_is_deterministic_per_input(self, fitted_model, rng):
        """Jitter emulates un-modeled error but the hardware stays a
        fixed function: repeated queries must agree."""
        config, base = fitted_model
        model = GaussianNoiseModel(
            c0=base.c0, c1=base.c1, c2=base.c2, sigma=0.02,
            device=base.device, rows=base.rows, jitter_seed=0,
        )
        (voltages, conductances), = sample_crossbar_workload(config.device, 8, 8, rng, 1, 3)
        a = model.predict(voltages, conductances)
        b = model.predict(voltages, conductances)
        np.testing.assert_allclose(a, b)

    def test_single_vector_shape(self, fitted_model, rng):
        config, model = fitted_model
        (voltages, conductances), = sample_crossbar_workload(config.device, 8, 8, rng, 1, 1)
        assert model.predict(voltages[0], conductances).shape == (8,)

    def test_prepare_crossbar_slices_columns(self, fitted_model, rng):
        config, model = fitted_model
        (voltages, conductances), = sample_crossbar_workload(config.device, 8, 8, rng, 1, 2)
        handle = model.prepare_crossbar(conductances, used_cols=3)
        out = model.predict_from_bias(voltages, handle)
        assert out.shape == (2, 3)
