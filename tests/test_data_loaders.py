"""Dataset/DataLoader and transform tests."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    Compose,
    DataLoader,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
)


@pytest.fixture
def small_data(rng):
    images = rng.random((20, 3, 8, 8)).astype(np.float32)
    labels = rng.integers(0, 4, size=20).astype(np.int64)
    return images, labels


class TestArrayDataset:
    def test_len_and_getitem(self, small_data):
        ds = ArrayDataset(*small_data)
        assert len(ds) == 20
        image, label = ds[3]
        assert image.shape == (3, 8, 8)
        assert isinstance(label, int)

    def test_length_mismatch_raises(self, small_data):
        images, labels = small_data
        with pytest.raises(ValueError):
            ArrayDataset(images, labels[:-1])


class TestDataLoader:
    def test_batch_shapes(self, small_data):
        loader = DataLoader(ArrayDataset(*small_data), batch_size=6)
        batches = list(loader)
        assert [len(b[0]) for b in batches] == [6, 6, 6, 2]

    def test_drop_last(self, small_data):
        loader = DataLoader(ArrayDataset(*small_data), batch_size=6, drop_last=True)
        assert [len(b[0]) for b in loader] == [6, 6, 6]
        assert len(loader) == 3

    def test_len_without_drop_last(self, small_data):
        assert len(DataLoader(ArrayDataset(*small_data), batch_size=6)) == 4

    def test_shuffle_changes_order_but_not_content(self, small_data):
        images, labels = small_data
        loader = DataLoader(ArrayDataset(images, labels), batch_size=20, shuffle=True, seed=1)
        (batch_images, batch_labels), = list(loader)
        assert not np.allclose(batch_images, images)  # order changed
        assert sorted(batch_labels.tolist()) == sorted(labels.tolist())

    def test_no_shuffle_preserves_order(self, small_data):
        images, labels = small_data
        loader = DataLoader(ArrayDataset(images, labels), batch_size=20)
        (batch_images, _), = list(loader)
        np.testing.assert_allclose(batch_images, images)

    def test_shuffle_differs_across_epochs(self, small_data):
        loader = DataLoader(ArrayDataset(*small_data), batch_size=20, shuffle=True, seed=1)
        first, = [b[1] for b in loader]
        second, = [b[1] for b in loader]
        assert not np.array_equal(first, second)

    def test_invalid_batch_size(self, small_data):
        with pytest.raises(ValueError):
            DataLoader(ArrayDataset(*small_data), batch_size=0)

    def test_transform_applied(self, small_data):
        images, labels = small_data
        ds = ArrayDataset(images, labels, transform=lambda batch, rng: batch * 0)
        loader = DataLoader(ds, batch_size=5)
        batch_images, _ = next(iter(loader))
        assert batch_images.max() == 0.0


class TestTransforms:
    def test_flip_probability_one_reverses(self, small_data, rng):
        images, _ = small_data
        flipped = RandomHorizontalFlip(p=1.0)(images, rng)
        np.testing.assert_allclose(flipped, images[:, :, :, ::-1])

    def test_flip_probability_zero_identity(self, small_data, rng):
        images, _ = small_data
        np.testing.assert_allclose(RandomHorizontalFlip(p=0.0)(images, rng), images)

    def test_random_crop_preserves_shape(self, small_data, rng):
        images, _ = small_data
        out = RandomCrop(padding=2)(images, rng)
        assert out.shape == images.shape

    def test_random_crop_zero_padding_identity(self, small_data, rng):
        images, _ = small_data
        np.testing.assert_allclose(RandomCrop(padding=0)(images, rng), images)

    def test_normalize(self, rng):
        batch = np.ones((2, 3, 4, 4), dtype=np.float32)
        out = Normalize(mean=[1, 1, 1], std=[2, 2, 2])(batch, rng)
        np.testing.assert_allclose(out, np.zeros_like(batch))

    def test_compose_order(self, rng):
        batch = np.full((1, 1, 2, 2), 4.0, dtype=np.float32)
        pipeline = Compose(
            [
                lambda b, r: b + 1.0,  # 5
                lambda b, r: b * 2.0,  # 10
            ]
        )
        np.testing.assert_allclose(pipeline(batch, rng), np.full_like(batch, 10.0))
