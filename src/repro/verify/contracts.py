"""Runtime-checkable contracts shared by tests and experiments.

The attack contract is the one every attack in :mod:`repro.attacks`
promises: adversarial examples stay inside the L-inf epsilon ball
around the clean input *and* inside the valid image domain [0, 1].
Property tests assert it over random budgets; the experiment harness
can additionally enforce it on real attack outputs by setting
``REPRO_VERIFY_ATTACKS=1`` (cheap elementwise checks, off by default).
"""

from __future__ import annotations

import os

import numpy as np


class AttackContractViolation(AssertionError):
    """An attack produced adversarial examples outside its contract."""


def assert_attack_contract(
    x_adv: np.ndarray, x: np.ndarray, epsilon: float, label: str = "attack"
) -> None:
    """Check ``x_adv`` against the epsilon-ball + [0, 1] domain contract.

    The bounds are exactly those of :func:`repro.attacks.base.clip_to_ball`
    (``clip(x_adv, max(x - eps, 0), min(x + eps, 1))``), so a correct
    attack satisfies them with *no* tolerance — any violation, however
    small, means a projection step was skipped or reordered.
    """
    x_adv = np.asarray(x_adv)
    x = np.asarray(x)
    if x_adv.shape != x.shape:
        raise AttackContractViolation(
            f"{label}: shape {x_adv.shape} does not match clean input {x.shape}"
        )
    if not np.all(np.isfinite(x_adv)):
        raise AttackContractViolation(f"{label}: non-finite adversarial values")
    lo = np.maximum(x - epsilon, 0.0)
    hi = np.minimum(x + epsilon, 1.0)
    below, above = x_adv < lo, x_adv > hi
    if below.any() or above.any():
        worst = float(np.max(np.maximum(lo - x_adv, x_adv - hi)))
        count = int(below.sum() + above.sum())
        raise AttackContractViolation(
            f"{label}: {count}/{x_adv.size} values leave the eps={epsilon} "
            f"ball/domain (worst excess {worst:.3e})"
        )


def attack_contract_enabled() -> bool:
    """Whether experiments should verify attack outputs inline."""
    return os.environ.get("REPRO_VERIFY_ATTACKS", "0") != "0"


def maybe_assert_attack_contract(
    x_adv: np.ndarray, x: np.ndarray, epsilon: float, label: str = "attack"
) -> None:
    """Env-gated variant for production call sites (no-op by default)."""
    if attack_contract_enabled():
        assert_attack_contract(x_adv, x, epsilon, label=label)
