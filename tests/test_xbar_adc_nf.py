"""ADC quantization and Non-ideality Factor metric tests."""

import numpy as np
import pytest

from repro.xbar.adc import ADCConfig, quantize_current
from repro.xbar.circuit import CircuitConfig
from repro.xbar.device import DeviceConfig
from repro.xbar.nf import crossbar_nf, non_ideality_factor, sample_crossbar_workload


class TestADC:
    def test_disabled_adc_is_identity(self, rng):
        currents = rng.random(10) * 1e-4
        out = quantize_current(currents, ADCConfig(bits=None), physical_max=1e-3)
        np.testing.assert_allclose(out, currents)

    def test_quantization_grid(self):
        cfg = ADCConfig(bits=2, full_scale_fraction=1.0)
        # full scale 1.0, 3 levels -> lsb = 1/3.
        out = quantize_current(np.array([0.0, 0.2, 0.5, 1.0]), cfg, physical_max=1.0)
        np.testing.assert_allclose(out, [0.0, 1 / 3, 2 / 3, 1.0], rtol=1e-12)

    def test_clipping_at_full_scale(self):
        cfg = ADCConfig(bits=4, full_scale_fraction=0.5)
        out = quantize_current(np.array([0.9]), cfg, physical_max=1.0)
        assert out[0] == pytest.approx(0.5)

    def test_negative_currents_clip_to_zero(self):
        cfg = ADCConfig(bits=4, full_scale_fraction=1.0)
        assert quantize_current(np.array([-0.1]), cfg, physical_max=1.0)[0] == 0.0

    def test_quantization_error_bounded_by_half_lsb(self, rng):
        cfg = ADCConfig(bits=8, full_scale_fraction=1.0)
        currents = rng.random(1000)
        out = quantize_current(currents, cfg, physical_max=1.0)
        lsb = 1.0 / (2**8 - 1)
        assert np.abs(out - currents).max() <= lsb / 2 + 1e-12

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ADCConfig(bits=0)
        with pytest.raises(ValueError):
            ADCConfig(full_scale_fraction=0.0)
        with pytest.raises(ValueError):
            ADCConfig(full_scale_fraction=1.5)


class TestNFMetric:
    def test_zero_for_identical(self):
        values = np.array([1.0, 2.0, 3.0])
        assert non_ideality_factor(values, values) == 0.0

    def test_known_deviation(self):
        ideal = np.array([1.0, 1.0])
        nonideal = np.array([0.9, 0.8])
        assert non_ideality_factor(ideal, nonideal) == pytest.approx(0.15)

    def test_small_outputs_excluded(self):
        ideal = np.array([1.0, 1e-9])
        nonideal = np.array([0.9, 0.0])
        # Without masking the second column contributes deviation 1.0.
        assert non_ideality_factor(ideal, nonideal) == pytest.approx(0.1)

    def test_all_below_threshold_raises(self):
        with pytest.raises(ValueError):
            non_ideality_factor(np.zeros(3), np.zeros(3))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            non_ideality_factor(np.ones(3), np.ones(4))


class TestWorkloadSampling:
    def test_shapes_and_ranges(self, rng):
        device = DeviceConfig(r_on=100e3)
        workload = sample_crossbar_workload(device, 8, 8, rng, num_matrices=3, vectors_per_matrix=5)
        assert len(workload) == 3
        for voltages, conductances in workload:
            assert voltages.shape == (5, 8)
            assert conductances.shape == (8, 8)
            assert voltages.min() >= 0.0 and voltages.max() <= device.v_read
            assert conductances.min() >= device.g_min - 1e-15
            assert conductances.max() <= device.g_max + 1e-15

    def test_sparsity_varies(self, rng):
        device = DeviceConfig()
        workload = sample_crossbar_workload(device, 8, 8, rng, 5, 10)
        sparsities = [float((v > 0).mean()) for v, _g in workload]
        assert max(sparsities) - min(sparsities) > 0.1


class TestCrossbarNF:
    def test_nf_positive_for_parasitic_crossbar(self):
        device = DeviceConfig(r_on=100e3, iv_beta=0.25)
        circuit = CircuitConfig(rows=8, cols=8, r_source=350, r_sink=350, r_wire=4.0)
        nf = crossbar_nf(circuit, device, num_matrices=2, vectors_per_matrix=4)
        assert 0.0 < nf < 0.5

    def test_nf_grows_with_size(self):
        """Table I trend: NF is directly proportional to crossbar size."""
        device = DeviceConfig(r_on=100e3, iv_beta=0.25)
        small = crossbar_nf(
            CircuitConfig(rows=8, cols=8, r_source=350, r_sink=350, r_wire=4.0),
            device, num_matrices=2, vectors_per_matrix=4,
        )
        large = crossbar_nf(
            CircuitConfig(rows=16, cols=16, r_source=350, r_sink=350, r_wire=4.0),
            device, num_matrices=2, vectors_per_matrix=4,
        )
        assert large > small

    def test_nf_shrinks_with_higher_r_on(self):
        """Table I trend: NF is inversely proportional to ON resistance."""
        circuit = CircuitConfig(rows=8, cols=8, r_source=350, r_sink=350, r_wire=4.0)
        low_r = crossbar_nf(
            circuit, DeviceConfig(r_on=100e3, iv_beta=0.25), num_matrices=2, vectors_per_matrix=4
        )
        high_r = crossbar_nf(
            circuit, DeviceConfig(r_on=300e3, iv_beta=0.25), num_matrices=2, vectors_per_matrix=4
        )
        assert high_r < low_r
