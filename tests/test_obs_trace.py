"""Trace-span unit tests: nesting, attribution, the disabled path."""

from __future__ import annotations

import pytest

from repro.obs import trace
from repro.obs.trace import _NULL_SPAN, SpanStats, TraceRecorder, span


@pytest.fixture
def recorder():
    """A recorder installed for the duration of one test."""
    rec = TraceRecorder()
    trace.install(rec)
    yield rec
    trace.uninstall()


class TestRecorder:
    def test_nesting_builds_slash_paths(self, recorder):
        with span("cmd/table3"):
            with span("attack/pgd"):
                with span("iter"):
                    pass
                with span("iter"):
                    pass
        assert set(recorder.stats) == {
            "cmd/table3",
            "cmd/table3/attack/pgd",
            "cmd/table3/attack/pgd/iter",
        }
        assert recorder.stats["cmd/table3/attack/pgd/iter"].count == 2
        assert recorder.stats["cmd/table3"].count == 1

    def test_sibling_spans_do_not_merge(self, recorder):
        with span("root"):
            with span("a"):
                pass
            with span("b"):
                pass
        assert {"root", "root/a", "root/b"} == set(recorder.stats)

    def test_self_time_excludes_children(self, recorder):
        with span("outer"):
            with span("inner"):
                pass
        outer = recorder.stats["outer"]
        inner = recorder.stats["outer/inner"]
        assert outer.self_time == pytest.approx(outer.total - inner.total, abs=1e-9)
        assert inner.self_time == pytest.approx(inner.total)
        assert outer.total >= inner.total

    def test_exception_still_closes_span(self, recorder):
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("boom")
        assert recorder.depth == 0
        assert recorder.stats["outer"].count == 1
        assert recorder.stats["outer/inner"].count == 1

    def test_unbalanced_end_is_tolerated(self, recorder):
        recorder.end()  # nothing open: must not raise
        assert recorder.stats == {}

    def test_draining_open_spans_attributes_time(self, recorder):
        # Simulate the finalizer path: spans left open by a crash are
        # drained with repeated end() calls before the profile dumps.
        recorder.begin("a")
        recorder.begin("b")
        while recorder.depth:
            recorder.end()
        assert set(recorder.stats) == {"a", "a/b"}

    def test_profile_rows_sorted_and_json_ready(self, recorder):
        with span("z"):
            pass
        with span("a"):
            pass
        rows = recorder.profile()
        assert [row["path"] for row in rows] == ["a", "z"]
        assert all({"path", "count", "total_s", "self_s"} <= set(r) for r in rows)

    def test_emit_respects_depth_limit(self):
        emitted = []
        rec = TraceRecorder(
            emit=lambda path, dur, depth: emitted.append((path, depth)), emit_depth=2
        )
        trace.install(rec)
        try:
            with span("l1"):
                with span("l2"):
                    with span("l3"):  # depth 3 > emit_depth: silent
                        pass
        finally:
            trace.uninstall()
        assert [(p, d) for p, d in emitted] == [("l1/l2", 2), ("l1", 1)]

    def test_recorder_swap_mid_span_is_safe(self):
        first, second = TraceRecorder(), TraceRecorder()
        trace.install(first)
        try:
            s = span("outer")
            with s:
                trace.install(second)  # swapped while the span is open
                with span("inner"):
                    pass
            # outer closed on the recorder that began it; the swapped-in
            # recorder only ever saw spans it opened itself.
            assert "outer" in first.stats
            assert set(second.stats) == {"inner"}
        finally:
            trace.uninstall()


class TestDisabledPath:
    def test_span_returns_shared_null_object(self):
        assert not trace.enabled()
        assert span("anything") is _NULL_SPAN
        assert span("other") is _NULL_SPAN  # no per-call allocation

    def test_null_span_swallows_nothing(self):
        with pytest.raises(ValueError):
            with span("x"):
                raise ValueError("propagates")

    def test_install_uninstall_toggle(self):
        rec = TraceRecorder()
        trace.install(rec)
        assert trace.enabled() and trace.current() is rec
        trace.uninstall()
        assert not trace.enabled() and trace.current() is None


class TestSpanStats:
    def test_self_time_never_negative(self):
        stats = SpanStats()
        stats.total = 1.0
        stats.child = 2.0  # child timers can overshoot on clock jitter
        assert stats.self_time == 0.0
