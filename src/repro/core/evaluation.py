"""Evaluation engine: clean and adversarial accuracy on every hardware.

:class:`HardwareLab` owns the shared expensive state of the paper's
evaluation — trained victims, GENIEx surrogates, converted hardware
models, wrapped defenses — so the table/figure experiments can request
cells declaratively.  :class:`EvaluationScale` shrinks or grows the
whole evaluation (test-suite tiny runs vs benchmark runs vs full
paper-scale runs) in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import Module
from repro.obs import runtime as _obs_runtime
from repro.obs.trace import span as _span
from repro.train.trainer import evaluate_accuracy
from repro.train.zoo import ModelZoo, default_zoo
from repro.xbar.presets import crossbar_preset, load_or_train_geniex, preset_names
from repro.xbar.quant import QuantConfig, with_quant
from repro.xbar.simulator import convert_to_hardware
from repro.attacks.base import predict_logits
from repro.defenses import (
    InputBitWidthReduction,
    RandomResizePad,
    StochasticActivationPruning,
)


def adversarial_accuracy(
    model: Module, x_adv: np.ndarray, y: np.ndarray, batch_size: int = 128
) -> float:
    """Accuracy of ``model`` on (already crafted) adversarial inputs."""
    logits = predict_logits(model, x_adv, batch_size)
    return float((logits.argmax(axis=1) == np.asarray(y)).mean())


@dataclass(frozen=True)
class EvaluationScale:
    """Knobs that trade evaluation fidelity for wall-clock time.

    The paper's full scale (10000 CIFAR test images, 1000 Square
    queries) is hours of pure-numpy crossbar emulation; the default
    here reproduces every trend at ~100x less compute.  Tests use
    :meth:`tiny`.
    """

    eval_size: int = 128  # adversarial eval subset per task
    square_queries: int = 200  # non-adaptive Square budget (paper: 1000)
    square_queries_hil: int = 30  # adaptive budget (paper: 30)
    pgd_iterations: int = 30  # paper: 30
    ensemble_query_size: int = 1024  # images used to distill surrogates
    ensemble_distill_epochs: int = 8
    surrogate_width: int = 8
    calibration_size: int = 64  # hardware gain-calibration images
    batch_size: int = 128
    #: Worker processes for analog eval/attacks: 1 = serial,
    #: 0 = cpu_count - 1, N = explicit pool size (see repro.parallel).
    workers: int = 1

    @classmethod
    def tiny(cls) -> "EvaluationScale":
        """Unit-test scale: seconds, not minutes."""
        return cls(
            eval_size=16,
            square_queries=10,
            square_queries_hil=5,
            pgd_iterations=3,
            ensemble_query_size=64,
            ensemble_distill_epochs=1,
            surrogate_width=4,
            calibration_size=16,
            batch_size=16,
        )


@dataclass
class CellResult:
    """One cell group of Table III/IV: baseline plus per-variant accuracy."""

    attack: str
    task: str
    epsilon: float
    baseline: float
    variants: dict[str, float] = field(default_factory=dict)

    def delta(self, name: str) -> float:
        """Absolute accuracy change vs the digital baseline (paper's +/-)."""
        return self.variants[name] - self.baseline

    def format_row(self) -> str:
        parts = [f"{self.attack:<38} baseline={self.baseline * 100:6.2f}"]
        for name, acc in self.variants.items():
            parts.append(f"{name}={acc * 100:6.2f} ({self.delta(name) * 100:+6.2f})")
        return "  ".join(parts)


class HardwareLab:
    """Caches victims, hardware conversions and defenses per task."""

    def __init__(
        self,
        scale: EvaluationScale | None = None,
        zoo: ModelZoo | None = None,
        victim_epochs: int | None = None,
        victim_width: int | None = None,
        quant: bool = False,
    ):
        self.scale = scale or EvaluationScale()
        self.zoo = zoo or default_zoo()
        self.victim_epochs = victim_epochs
        self.victim_width = victim_width
        #: Run every converted hardware model in int8 quantized mode
        #: (static per-layer input scales + the integer pulse-expansion
        #: MVM path; see repro.xbar.quant).  The CLI's ``--int8`` flag.
        self.quant = quant
        self._hardware: dict[tuple[str, str], Module] = {}
        self._defenses: dict[tuple[str, str], Module] = {}
        self._geniex: dict[str, object] = {}
        if self.scale.workers != 1:
            from repro.parallel.backend import configure

            configure(self.scale.workers)

    # ------------------------------------------------------------------
    # Victims and data
    # ------------------------------------------------------------------
    def victim_entry(self, task: str):
        return self.zoo.get_classifier(
            task, epochs=self.victim_epochs, width=self.victim_width
        )

    def victim(self, task: str) -> Module:
        return self.victim_entry(task).model

    def task_data(self, task: str):
        return self.victim_entry(task).task

    def eval_set(self, task: str) -> tuple[np.ndarray, np.ndarray]:
        """The reduced adversarial evaluation subset for a task."""
        data = self.task_data(task)
        n = min(self.scale.eval_size, len(data.x_test))
        return data.x_test[:n], data.y_test[:n]

    def calibration_images(self, task: str) -> np.ndarray:
        data = self.task_data(task)
        return data.x_train[: self.scale.calibration_size]

    def surrogate_query_images(self, task: str) -> np.ndarray:
        """Training images the black-box attacker queries the victim on."""
        data = self.task_data(task)
        return data.x_train[: self.scale.ensemble_query_size]

    # ------------------------------------------------------------------
    # Hardware variants and defenses
    # ------------------------------------------------------------------
    def geniex(self, preset: str):
        if preset not in self._geniex:
            self._geniex[preset] = load_or_train_geniex(crossbar_preset(preset))
        return self._geniex[preset]

    def hardware(self, task: str, preset: str) -> Module:
        """The victim converted to one crossbar preset (calibrated, cached)."""
        key = (task, preset)
        if key not in self._hardware:
            config = crossbar_preset(preset)
            if self.quant:
                config = with_quant(config, QuantConfig(mode="int8"))
            self._hardware[key] = convert_to_hardware(
                self.victim(task),
                config,
                predictor=self.geniex(preset),
                calibration_images=self.calibration_images(task),
            )
        return self._hardware[key]

    @property
    def hardware_models(self) -> dict[str, Module]:
        """Converted hardware models built so far, keyed ``task/preset``.

        Read-only snapshot for reporting (e.g. the CLI's ``--perf``
        hot-path counter dump); building still goes through
        :meth:`hardware`.
        """
        return {f"{task}/{preset}": model for (task, preset), model in self._hardware.items()}

    def defense(self, task: str, name: str) -> Module:
        """A comparison defense wrapped around the pretrained victim.

        ``name``: ``bitwidth4`` | ``sap`` | ``randpad``.
        """
        key = (task, name)
        if key not in self._defenses:
            victim = self.victim(task)
            if name == "bitwidth4":
                wrapped: Module = InputBitWidthReduction(victim, bits=4)
            elif name == "sap":
                wrapped = StochasticActivationPruning(victim, sample_fraction=4.0, seed=5)
            elif name == "randpad":
                wrapped = RandomResizePad(victim, pad_range=4, seed=5)
            else:
                raise KeyError(f"unknown defense {name!r}")
            wrapped.eval()
            self._defenses[key] = wrapped
        return self._defenses[key]

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def clean_cell(self, task: str, variants: list[str], defenses: list[str]) -> CellResult:
        """Clean-accuracy row of Table III."""
        x, y = self.eval_set(task)
        with _span("eval/clean"):
            cell = CellResult(
                attack="Clean",
                task=task,
                epsilon=0.0,
                baseline=evaluate_accuracy(self.victim(task), x, y),
            )
            for preset in variants:
                cell.variants[preset] = evaluate_accuracy(
                    self.hardware(task, preset), x, y, batch_size=self.scale.batch_size
                )
            for name in defenses:
                cell.variants[name] = adversarial_accuracy(
                    self.defense(task, name), x, y, batch_size=self.scale.batch_size
                )
        self._emit_cell(cell)
        return cell

    def attack_cell(
        self,
        task: str,
        attack_name: str,
        epsilon: float,
        x_adv: np.ndarray,
        variants: list[str],
        defenses: list[str],
    ) -> CellResult:
        """Evaluate pre-crafted adversarial images on every variant."""
        _x, y = self.eval_set(task)
        with _span("eval/attack"):
            cell = CellResult(
                attack=attack_name,
                task=task,
                epsilon=epsilon,
                baseline=adversarial_accuracy(self.victim(task), x_adv, y),
            )
            for preset in variants:
                cell.variants[preset] = adversarial_accuracy(
                    self.hardware(task, preset), x_adv, y, batch_size=self.scale.batch_size
                )
            for name in defenses:
                cell.variants[name] = adversarial_accuracy(
                    self.defense(task, name), x_adv, y, batch_size=self.scale.batch_size
                )
        self._emit_cell(cell)
        return cell

    @staticmethod
    def _emit_cell(cell: CellResult) -> None:
        """Record one finished table cell in the obs event log."""
        _obs_runtime.event(
            "cell",
            attack=cell.attack,
            task=cell.task,
            epsilon=cell.epsilon,
            baseline=cell.baseline,
            variants=cell.variants,
        )

    @staticmethod
    def all_presets() -> list[str]:
        return preset_names()
