"""Analog-health telemetry: the paper's signals, recorded as they occur.

Related work ties intrinsic robustness to the magnitude and *location*
of per-layer non-ideal deviation (arXiv:2008.11298) and to how
non-ideality interacts with attack dynamics (arXiv:2409.19671).  This
module records exactly those quantities into the metrics registry and
the JSONL event log while an ``--obs`` run is active:

* per-layer MVM deviation of the analog path vs the ideal digital path
  (RMSE gauge + relative-NF-style histogram),
* ADC clip / saturation rates per layer (counted on the raw currents,
  so the compiled fused kernels stay on their fast path),
* fault-fallback / guard-trip events from the tile health guard,
* per-attack-iteration loss and flip-rate curves.

Every helper is a no-op (one ``None`` check) when no run is active, so
the call sites stay in the hot paths permanently.  Stream-skip and
row-compaction ratios ride along via the hot-path counter publish
(:func:`repro.obs.metrics.publish_hotpath`).

Inside a :mod:`repro.parallel` pool worker the "active session" is a
:class:`repro.obs.runtime.WorkerCapture`: the same helpers record into
the worker's registry and event buffer, which the parent merges in
shard order — so every signal here stays complete under ``--workers N``.
"""

from __future__ import annotations

import math
import time

from repro.obs import runtime as _runtime
from repro.obs.live import TIMESERIES
from repro.obs.metrics import REGISTRY


def active() -> bool:
    """True when an obs run is recording analog-health telemetry."""
    return _runtime.active() is not None


def layer_label(obj, fallback: str | None = None) -> str:
    """Stable per-layer metric label.

    ``convert_to_hardware`` stamps every non-ideal layer and engine
    with its dotted module path (``obs_label``); directly constructed
    engines fall back to a type/shape tag.
    """
    label = getattr(obj, "obs_label", None)
    if label:
        return label
    if fallback:
        return fallback
    out = getattr(obj, "out_features", "?")
    inp = getattr(obj, "in_features", "?")
    return f"{type(obj).__name__}:{out}x{inp}"


def deviation_stats(analog, ideal) -> tuple[float, float]:
    """``(rmse, relative deviation)`` of an analog batch vs its ideal.

    The relative form is ``||analog - ideal|| / ||ideal||`` — the
    per-layer decomposition of the paper's Non-ideality Factor.  Shared
    by the obs-session recording below and the lifecycle health probe
    (:func:`repro.lifecycle.probe_health`), so both read the same
    number for the same batch.
    """
    import numpy as np

    analog = np.asarray(analog, dtype=np.float64)
    ideal = np.asarray(ideal, dtype=np.float64)
    err = analog - ideal
    rmse = float(np.sqrt(np.mean(err * err))) if err.size else 0.0
    denom = float(np.sqrt(np.sum(ideal * ideal)))
    rel = float(np.sqrt(np.sum(err * err)) / denom) if denom > 0 else 0.0
    return rmse, rel


def record_layer_deviation(label: str, analog, ideal) -> None:
    """Per-layer analog-vs-ideal deviation for one forward batch.

    ``analog`` is the layer's non-ideal pre-bias output, ``ideal`` the
    full-precision digital computation on the same inputs — so the
    deviation includes quantization, IR drop and faults: the per-layer
    decomposition of the paper's Non-ideality Factor.
    """
    if _runtime.active() is None:
        return
    rmse, rel = deviation_stats(analog, ideal)
    REGISTRY.gauge(f"analog.dev.rmse.{label}").set(rmse)
    REGISTRY.gauge(f"analog.dev.rel.{label}").set(rel)
    REGISTRY.histogram(f"analog.dev.rel_hist.{label}").observe(rel)
    REGISTRY.histogram("analog.dev.rel").observe(rel)
    # Live view of the same signal: the serving anomaly watcher and the
    # /metrics scrape read per-layer NF as a windowed time series.
    TIMESERIES.record(f"health.nf.{label}", rel, time.time(), kind="max")


def record_adc(label: str, currents, full_scale: float) -> None:
    """ADC clip statistics for one bank evaluation (raw currents).

    Counted *before* quantization: values below zero clip low, values
    above the ADC full scale saturate high.  Works identically whether
    the fused compiled kernel or the numpy chain performs the actual
    quantization.
    """
    if _runtime.active() is None:
        return
    import numpy as np

    currents = np.asarray(currents)
    low = int((currents < 0.0).sum())
    high = int((currents > full_scale).sum())
    REGISTRY.counter(f"analog.adc.samples.{label}").inc(currents.size)
    if low:
        REGISTRY.counter(f"analog.adc.clipped_low.{label}").inc(low)
    if high:
        REGISTRY.counter(f"analog.adc.clipped_high.{label}").inc(high)
    if currents.size:
        TIMESERIES.record(
            f"health.adc_clip.{label}",
            (low + high) / currents.size,
            time.time(),
            kind="max",
        )


def record_guard_trip(label: str, mode: str, sick: int, sick_cols: int) -> None:
    """One tile-health guard interception (fault fallback, warn or raise)."""
    if _runtime.active() is None:
        return
    REGISTRY.counter(f"analog.guard.trips.{label}").inc()
    TIMESERIES.record(f"health.guard_trips.{label}", 1.0, time.time(), kind="sum")
    _runtime.event(
        "guard_trip", layer=label, mode=mode, sick=sick, sick_cols=sick_cols
    )


def record_fault_summary(label: str, summary) -> None:
    """Injected-fault population of one programmed engine (as counters)."""
    if _runtime.active() is None:
        return
    import dataclasses

    for name, value in dataclasses.asdict(summary).items():
        if value:
            REGISTRY.counter(f"analog.faults.{name}.{label}").inc(int(value))


def record_drift_sync(label: str, state: dict) -> None:
    """One engine's drift-epoch transition (see ``sync_drift``)."""
    if _runtime.active() is None:
        return
    REGISTRY.gauge(f"analog.drift.epoch.{label}").set(int(state["epoch"]))
    REGISTRY.gauge(f"analog.drift.pulses.{label}").set(int(state["pulse_count"]))
    if state.get("converted"):
        REGISTRY.gauge(f"analog.drift.converted.{label}").set(int(state["converted"]))
    _runtime.event(
        "drift_sync",
        layer=label,
        epoch=int(state["epoch"]),
        age=int(state["age_epochs"]),
        pulses=int(state["pulse_count"]),
        converted=int(state.get("converted", 0)),
    )


def record_recalibration(
    action: str, layers: list, attempt: int, healthy: bool, trigger: dict | None = None
) -> None:
    """One recalibration-scheduler action (gain refit / reprogram / escalation)."""
    if _runtime.active() is None:
        return
    REGISTRY.counter(f"lifecycle.recal.{action}").inc()
    if not healthy:
        REGISTRY.counter("lifecycle.recal.unhealthy_after").inc()
    _runtime.event(
        "recalibration",
        action=action,
        layers=list(layers),
        attempt=int(attempt),
        healthy=bool(healthy),
        trigger=trigger or {},
    )


def record_attack_iteration(
    attack: str, iteration: int, loss: float, flip_rate: float, batch: int
) -> None:
    """One point of an attack's loss / flip-rate trajectory.

    Events aggregate across batches at summarize time (weighted by
    ``batch``); the histograms give the quantile view in the metrics
    table.
    """
    if _runtime.active() is None:
        return
    if loss is not None and math.isfinite(loss):
        REGISTRY.histogram(f"attack.{attack}.loss").observe(loss)
    REGISTRY.histogram(f"attack.{attack}.flip_rate").observe(flip_rate)
    _runtime.event(
        "attack_iter",
        attack=attack,
        iter=int(iteration),
        loss=float(loss) if loss is not None else None,
        flip_rate=float(flip_rate),
        n=int(batch),
    )
