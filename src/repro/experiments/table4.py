"""Table IV: hardware-in-loop adaptive attacks, including crossbar
mismatch between attacker and target.

Three blocks, as in the paper:

* Ensemble BB (attacker queries its own hardware: 64x64_100k),
  eps=4/255, evaluated on all three targets;
* Square Attack with 30 hardware queries (attacker hardware:
  32x32_100k), eps=8/255;
* White-box HIL PGD (attacker hardware: 64x64_100k), eps=1/255 and
  2/255.

Bold-diagonal semantics: when the attacker's crossbar model matches the
target's, the attack should be strongest (lowest accuracy).
"""

from __future__ import annotations

from repro.core.evaluation import CellResult, HardwareLab
from repro.experiments.config import ExperimentResult, paper_eps, traced_experiment
from repro.experiments.shared import AttackFactory
from repro.xbar.presets import preset_names


def run_ensemble_block(
    lab: HardwareLab, task: str, factory: AttackFactory, attacker_preset: str = "64x64_100k"
) -> CellResult:
    """Adaptive ensemble BB: surrogates distilled from hardware queries."""
    eps = paper_eps(task, 4)
    attacker_hw = lab.hardware(task, attacker_preset)
    x_adv = factory.ensemble_pgd(task, attacker_hw, eps)
    return lab.attack_cell(
        task,
        f"HIL Ensemble BB (attacker {attacker_preset}) eps=4/255",
        eps,
        x_adv,
        preset_names(),
        [],
    )


def run_square_block(
    lab: HardwareLab, task: str, factory: AttackFactory, attacker_preset: str = "32x32_100k"
) -> CellResult:
    """Adaptive Square: 30 queries against the attacker's hardware."""
    eps = paper_eps(task, 8)
    attacker_hw = lab.hardware(task, attacker_preset)
    x_adv = factory.square(
        task, attacker_hw, eps, queries=lab.scale.square_queries_hil, seed=41
    )
    return lab.attack_cell(
        task,
        f"HIL Square (attacker {attacker_preset}, q={lab.scale.square_queries_hil}) eps=8/255",
        eps,
        x_adv,
        preset_names(),
        [],
    )


def run_whitebox_block(
    lab: HardwareLab,
    task: str,
    factory: AttackFactory,
    k: float,
    attacker_preset: str = "64x64_100k",
) -> CellResult:
    """HIL white-box PGD: forward on attacker's crossbar, ideal backward."""
    eps = paper_eps(task, k)
    attacker_hw = lab.hardware(task, attacker_preset)
    x_adv = factory.whitebox_pgd(task, attacker_hw, eps, batch_size=lab.scale.batch_size)
    return lab.attack_cell(
        task,
        f"HIL White Box PGD (attacker {attacker_preset}) eps={k}/255",
        eps,
        x_adv,
        preset_names(),
        [],
    )


@traced_experiment("table4")
def run(
    lab: HardwareLab,
    tasks: list[str] | None = None,
    include_square: bool = True,
    whitebox_ks: tuple[float, ...] = (1, 2),
) -> ExperimentResult:
    """Regenerate Table IV for the requested tasks."""
    tasks = tasks or ["cifar10", "cifar100"]
    factory = AttackFactory(lab)
    result = ExperimentResult(
        name="Table IV",
        headline="Hardware-in-loop adaptive attacks (accuracy vs digital baseline)",
    )
    for task in tasks:
        result.rows.append(f"--- {task} ---")
        cells = [run_ensemble_block(lab, task, factory)]
        if include_square:
            cells.append(run_square_block(lab, task, factory))
        for k in whitebox_ks:
            cells.append(run_whitebox_block(lab, task, factory, k))
        for cell in cells:
            result.rows.append(cell.format_row())
        result.data[task] = cells
    return result
