"""Bit-slicing of weights and input streaming (PUMA mapping, step iii).

NVM cells hold only a few bits, and DACs drive only a few bits per
step, so the functional simulator decomposes:

* a ``weight_bits``-bit unsigned weight integer into ``weight_bits /
  slice_bits`` *slices*, each programmed into its own crossbar column
  group, and
* an ``input_bits``-bit unsigned activation integer into ``input_bits /
  stream_bits`` *streams*, each applied as one analog MVM.

Partial results are combined with shift-and-add:

``dot(x, w) = sum_{s,t} 2^(s*slice_bits + t*stream_bits) dot(d_t, w_s)``

Signed values are handled one level up (the engine splits weights into
positive/negative arrays — the differential-crossbar scheme).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.xbar.quant import quantize_affine


@dataclass(frozen=True)
class BitSliceConfig:
    """Quantization and slicing parameters of the functional simulator.

    Defaults (8-bit activations in 4-bit streams, 6-bit weights in 2-bit
    slices) are a laptop-scale rendition of PUMA's 16-bit/2-bit scheme:
    the error structure (per-slice analog error, shift-add recombination)
    is identical, only the precision budget is smaller.
    """

    input_bits: int = 8
    stream_bits: int = 4
    weight_bits: int = 6
    slice_bits: int = 2

    def __post_init__(self):
        if self.input_bits % self.stream_bits != 0:
            raise ValueError(
                f"stream_bits {self.stream_bits} must divide input_bits {self.input_bits}"
            )
        if self.weight_bits % self.slice_bits != 0:
            raise ValueError(
                f"slice_bits {self.slice_bits} must divide weight_bits {self.weight_bits}"
            )

    @property
    def num_streams(self) -> int:
        return self.input_bits // self.stream_bits

    @property
    def num_slices(self) -> int:
        return self.weight_bits // self.slice_bits

    @property
    def input_levels(self) -> int:
        return 2**self.input_bits

    @property
    def weight_levels(self) -> int:
        return 2**self.weight_bits

    @property
    def stream_levels(self) -> int:
        return 2**self.stream_bits

    @property
    def slice_levels(self) -> int:
        return 2**self.slice_bits


def quantize_unsigned(
    values: np.ndarray, bits: int, scale: float
) -> np.ndarray:
    """Quantize non-negative floats to ``bits``-bit integers given scale.

    ``scale`` maps integer 1 to physical value ``scale``; values are
    rounded and clipped to [0, 2**bits - 1].
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    # Same divide→rint→clip→cast chain as always, via the shared
    # quantizer primitive (repro.xbar.quant) — bit-identical.
    return quantize_affine(
        np.asarray(values), scale=scale, top=2**bits - 1, dtype=np.int64
    )


def slice_bits_lsb_first(values: np.ndarray, total_bits: int, chunk_bits: int) -> list[np.ndarray]:
    """Split unsigned integers into chunk_bits-wide slices, LSB first."""
    values = np.asarray(values, dtype=np.int64)
    if values.size and (values.min() < 0 or values.max() >= 2**total_bits):
        raise ValueError(f"values exceed {total_bits}-bit unsigned range")
    mask = (1 << chunk_bits) - 1
    return [
        (values >> (k * chunk_bits)) & mask
        for k in range(total_bits // chunk_bits)
    ]


def slice_weights(weight_ints: np.ndarray, config: BitSliceConfig) -> list[np.ndarray]:
    """Split unsigned weight integers into slices (LSB first).

    Slice ``s`` has significance ``2**(s * slice_bits)``.
    """
    return slice_bits_lsb_first(weight_ints, config.weight_bits, config.slice_bits)


def stream_inputs(input_ints: np.ndarray, config: BitSliceConfig) -> list[np.ndarray]:
    """Split unsigned activation integers into streams (LSB first).

    Stream ``t`` has significance ``2**(t * stream_bits)``.
    """
    return slice_bits_lsb_first(input_ints, config.input_bits, config.stream_bits)


def reassemble(slices: list[np.ndarray], chunk_bits: int) -> np.ndarray:
    """Inverse of slicing: shift-and-add LSB-first chunks back together."""
    out = np.zeros_like(np.asarray(slices[0], dtype=np.int64))
    for k, chunk in enumerate(slices):
        out = out + (np.asarray(chunk, dtype=np.int64) << (k * chunk_bits))
    return out


class StreamWorkspace:
    """Engine-owned buffers for per-call DAC quantization + streaming.

    The float path re-quantizes against the batch maximum on every
    matvec, which used to allocate a float64 quotient, an int64 code
    matrix and one int64 plane per stream *per call*.  This workspace
    owns all of them, sized to the largest batch seen, and skips the
    redundant range re-check of :func:`slice_bits_lsb_first` (the clip
    guarantees the range).  Pure allocation hoist: the value chain
    (divide → rint → clip → cast → shift/mask) is unchanged, so the
    outputs are bit-identical to the unbuffered path (golden tests).
    """

    def __init__(self):
        self._rows = 0
        self._cols = -1
        self._count = 0
        self._work: np.ndarray | None = None
        self._codes: np.ndarray | None = None
        self._streams: list[np.ndarray] = []

    def _resize(self, n: int, cols: int, count: int) -> None:
        if (
            self._work is None
            or self._rows < n
            or self._cols != cols
            or self._count < count
        ):
            rows = max(n, self._rows)
            self._work = np.empty((rows, cols), dtype=np.float64)
            self._codes = np.empty((rows, cols), dtype=np.int64)
            self._streams = [
                np.empty((rows, cols), dtype=np.int64) for _ in range(count)
            ]
            self._rows, self._cols, self._count = rows, cols, count

    def quantize_and_stream(
        self, x: np.ndarray, lsb: float, config: BitSliceConfig
    ) -> list[np.ndarray]:
        """``stream_inputs(quantize(x / lsb), config)`` without allocating.

        Returns LSB-first stream views into reused buffers; callers
        must consume them before the next call.
        """
        n, cols = x.shape
        self._resize(n, cols, config.num_streams)
        codes = quantize_affine(
            x,
            scale=lsb,
            top=config.input_levels - 1,
            dtype=np.int64,
            work=self._work[:n],
            out=self._codes[:n],
        )
        mask = (1 << config.stream_bits) - 1
        streams: list[np.ndarray] = []
        for k in range(config.num_streams):
            buf = self._streams[k][:n]
            np.right_shift(codes, k * config.stream_bits, out=buf)
            np.bitwise_and(buf, mask, out=buf)
            streams.append(buf)
        return streams
