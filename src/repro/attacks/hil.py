"""Hardware-in-Loop adaptive attacks (§III-C.2 of the paper).

The attacker knows the DNN runs on NVM crossbar hardware and owns a
crossbar model — possibly a *different* one from the target's (the
technology may not match).  These helpers wire the base attacks to
hardware models so each Table-II adaptive scenario is one call:

* white-box HIL PGD: the forward pass runs on the attacker's crossbar
  model, activations recorded; derivatives assume ideal MVMs (the
  crossbar is inference-only) — this is exactly the straight-through
  backward implemented by NonIdealConv2d/NonIdealLinear.
* ensemble HIL: the surrogate synthetic dataset is built by querying
  the DNN *on the attacker's crossbar hardware*.
* square HIL: random-search queries go to the crossbar hardware
  directly, with the paper's reduced query budget (30).

All three helpers dispatch through the attacks' shard schedulers, so a
``--workers N`` run shards the per-image loops across the process pool
(:mod:`repro.parallel`) with results bit-identical to serial execution.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackResult
from repro.attacks.ensemble import EnsembleBlackBox, EnsembleConfig
from repro.attacks.pgd import PGD
from repro.attacks.square import SquareAttack
from repro.nn.module import Module


def hil_whitebox_pgd(
    attacker_hardware: Module,
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    iterations: int = 30,
    batch_size: int = 64,
    seed: int = 0,
) -> AttackResult:
    """Hardware-in-loop white-box PGD.

    ``attacker_hardware`` must be a converted hardware model (see
    :func:`repro.xbar.convert_to_hardware`); its layers run the analog
    forward pass and apply the ideal Jacobian on backward, which is the
    paper's HIL gradient-descent procedure.
    """
    pgd = PGD(epsilon, iterations=iterations, batch_size=batch_size, seed=seed)
    pgd._obs_name = "hil_pgd"  # distinct telemetry curve vs digital PGD
    return pgd.generate(attacker_hardware, x, y)


def hil_square_attack(
    attacker_hardware: Module,
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    max_queries: int = 30,
    seed: int = 0,
    batch_size: int = 256,
) -> AttackResult:
    """Hardware-in-loop Square Attack with the paper's 30-query budget.

    ``batch_size`` doubles as the shard size of the parallel plan —
    smaller values expose more shards to the worker pool.
    """
    attack = SquareAttack(
        epsilon, max_queries=max_queries, seed=seed, batch_size=batch_size
    )
    attack._obs_name = "hil_square"
    return attack.generate(attacker_hardware, x, y)


def hil_ensemble_attack(
    attacker_hardware: Module,
    train_images: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    iterations: int = 30,
    config: EnsembleConfig | None = None,
    seed: int = 0,
    verbose: bool = False,
) -> AttackResult:
    """Hardware-in-loop ensemble black-box attack.

    The synthetic distillation dataset is built by querying the DNN as
    implemented on the attacker's crossbar hardware, so the surrogates
    learn the *non-ideal* decision surface.
    """
    attack = EnsembleBlackBox(epsilon, iterations=iterations, config=config, seed=seed)
    attack.fit(attacker_hardware, train_images, verbose=verbose)
    return attack.generate(x, y)
