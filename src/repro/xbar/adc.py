"""ADC model: column currents are sensed with finite resolution.

PUMA's periphery digitizes every column current before shift-and-add.
We model a linear ADC with ``bits`` resolution over a configurable
fraction of the physical full-scale current (columns rarely reach the
theoretical maximum, so sizing the ADC to a fraction of it recovers
resolution — at the cost of clipping, which is also modeled).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ADCConfig:
    """Analog-to-digital converter parameters.

    Attributes
    ----------
    bits:
        Resolution; ``None`` disables ADC quantization entirely.
    full_scale_fraction:
        The ADC input range is ``fraction * I_physical_max`` where the
        physical max is rows * G_max * V_read for the tile.
    """

    bits: int | None = 8
    full_scale_fraction: float = 0.25

    def __post_init__(self):
        if self.bits is not None and self.bits <= 0:
            raise ValueError(f"adc bits must be positive, got {self.bits}")
        if not 0 < self.full_scale_fraction <= 1.0:
            raise ValueError("full_scale_fraction must be in (0, 1]")


def quantize_current(
    currents: np.ndarray, config: ADCConfig, physical_max: float
) -> np.ndarray:
    """Apply ADC transfer function: clip to range, round to LSB.

    Parameters
    ----------
    currents:
        Analog column currents (any shape).
    physical_max:
        rows * G_max * V_read of the tile being sensed.
    """
    if config.bits is None:
        return np.asarray(currents)
    full_scale = config.full_scale_fraction * physical_max
    levels = 2**config.bits - 1
    lsb = full_scale / levels
    clipped = np.clip(currents, 0.0, full_scale)
    return np.rint(clipped / lsb) * lsb
