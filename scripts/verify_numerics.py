#!/usr/bin/env python
"""Run the numerical verification catalog and write its JSON report.

Thin wrapper over ``python -m repro verify`` for CI and ad-hoc use:

    python scripts/verify_numerics.py [--seed N] [--quick] [--out PATH]

Exits non-zero if any differential or metamorphic check fails.  Run it
with ``REPRO_XBAR_CKERNELS=0`` as well to hold the pure-numpy fallbacks
to the same oracle (scripts/ci.sh does both).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main(["verify", *sys.argv[1:]]))
