"""Thin TCP front door: JSON-lines requests over asyncio streams.

One request per line::

    {"model": "cifar10-fp", "image": [[...], ...]}

one response per line::

    {"ok": true, "request_id": 7, "batch_size": 4, "logits": [...]}
    {"ok": false, "error": "overloaded"}

Operational verbs ride the same socket — a line carrying ``"op"``
instead of an inference payload::

    {"op": "metrics"}   -> {"ok": true, "metrics": "<prometheus text>"}
    {"op": "stats"}     -> {"ok": true, "stats": {...}, "delta": {...}}

``stats`` replies include a per-connection delta block (requests /
batches / rejections since this connection's previous ``stats`` call),
so pollers like ``repro top`` get windowed rates without server-side
session state.  A plain-HTTP ``/metrics`` scrape listener
(:func:`serve_metrics_http`) exposes the same exposition text to
anything that speaks Prometheus.

The wire layer adds **nothing** to the serving semantics — every
connection handler just awaits :meth:`AnalogServer.submit`, so typed
rejections surface as ``{"ok": false, "error": <reason>}`` and the
coalescing / ordering / backpressure contracts are exactly the
in-process ones.  Connections are independent tasks; many sockets'
requests coalesce into the same micro-batches.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.serve.server import AnalogServer, ServeError

#: Refuse request lines larger than this (64 MiB) instead of buffering.
MAX_LINE_BYTES = 64 << 20


def _scrape_extra(server: AnalogServer) -> dict:
    """Caller-computed gauges appended to every scrape."""
    return {
        f"serve.queue_depth.{name}": server._batcher.queue_depth(name)
        for name in server.registry.names()
    }


def _render_metrics(server: AnalogServer, transport: str) -> str:
    telemetry = server.telemetry
    extra = _scrape_extra(server)
    if telemetry is not None:
        return telemetry.scrape(extra=extra, transport=transport)
    from repro.obs.live import TIMESERIES, render_prometheus

    return render_prometheus(store=TIMESERIES, extra=extra)


def _handle_op(server: AnalogServer, request: dict, session: dict) -> dict:
    op = request.get("op")
    if op == "metrics":
        return {"ok": True, "metrics": _render_metrics(server, "tcp")}
    if op == "stats":
        stats = server.live_stats()
        counters = stats["server"]
        delta = {
            key: counters[key] - session["stats_mark"].get(key, 0)
            for key in ("requests", "batches", "rejected")
        }
        session["stats_mark"] = {
            key: counters[key] for key in ("requests", "batches", "rejected")
        }
        return {"ok": True, "stats": stats, "delta": delta}
    return {"ok": False, "error": f"unknown op {op!r}"}


async def _handle(
    server: AnalogServer, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    session: dict = {"stats_mark": {}}
    try:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                writer.write(b'{"ok": false, "error": "request too large"}\n')
                break
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if isinstance(request, dict) and "op" in request:
                    reply = _handle_op(server, request, session)
                    writer.write(json.dumps(reply).encode() + b"\n")
                    await writer.drain()
                    continue
                model = request["model"]
                image = np.asarray(request["image"], dtype=np.float32)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                reply = {"ok": False, "error": f"bad request: {exc}"}
            else:
                try:
                    result = await server.submit(model, image)
                except ServeError as exc:
                    reply = {"ok": False, "error": exc.reason}
                else:
                    reply = {
                        "ok": True,
                        "request_id": result.request_id,
                        "model": result.model,
                        "batch_size": result.batch_size,
                        "queued_us": result.queued_us,
                        "infer_us": result.infer_us,
                        "logits": np.asarray(result.logits).tolist(),
                    }
            writer.write(json.dumps(reply).encode() + b"\n")
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve_tcp(
    server: AnalogServer, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Expose a started :class:`AnalogServer` on a TCP socket.

    Returns the asyncio server (``.sockets[0].getsockname()[1]`` is the
    bound port when ``port=0``); close it before stopping ``server``.
    """

    async def handler(reader, writer):
        await _handle(server, reader, writer)

    return await asyncio.start_server(
        handler, host, port, limit=MAX_LINE_BYTES
    )


async def request_tcp(
    host: str, port: int, model: str, image: np.ndarray
) -> dict:
    """One-shot client helper: send one request line, await the reply."""
    return await _roundtrip(
        host, port, {"model": model, "image": np.asarray(image).tolist()}
    )


async def request_op(host: str, port: int, op: str) -> dict:
    """One-shot operational verb (``metrics`` / ``stats``)."""
    return await _roundtrip(host, port, {"op": op})


async def _roundtrip(host: str, port: int, payload: dict) -> dict:
    reader, writer = await asyncio.open_connection(host, port, limit=MAX_LINE_BYTES)
    try:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# ----------------------------------------------------------------------
# Plain-HTTP /metrics scrape listener
# ----------------------------------------------------------------------

async def _handle_http(
    server: AnalogServer, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """One minimal HTTP/1.0 exchange: GET /metrics -> text exposition.

    Hand-rolled on purpose (no framework dependency): read the request
    line, drain headers, answer, close.  Prometheus scrapers and curl
    both speak this happily.
    """
    try:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=10.0)
        except (asyncio.TimeoutError, TimeoutError):
            return
        parts = request_line.decode("latin-1", "replace").split()
        method = parts[0] if parts else ""
        path = parts[1] if len(parts) > 1 else "/"
        while True:  # drain headers until the blank line / EOF
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
        if method != "GET":
            status, body = "405 Method Not Allowed", b"method not allowed\n"
        elif path.split("?")[0] not in ("/metrics", "/"):
            status, body = "404 Not Found", b"try /metrics\n"
        else:
            status = "200 OK"
            body = _render_metrics(server, "http").encode()
        writer.write(
            (
                f"HTTP/1.0 {status}\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            + body
        )
        await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve_metrics_http(
    server: AnalogServer, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Expose the Prometheus scrape surface on a plain-HTTP socket."""

    async def handler(reader, writer):
        await _handle_http(server, reader, writer)

    return await asyncio.start_server(handler, host, port)
