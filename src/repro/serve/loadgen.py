"""Closed-loop load generator for :class:`AnalogServer`.

``N`` concurrent clients each keep exactly one request in flight: a
client submits, awaits the response, then immediately submits the next
— the classic closed-loop model, so offered load scales with client
count and the server's own latency, never ahead of it.  Overload
rejections are counted and (by default) retried after a short backoff,
which is what a well-behaved client does with a typed 429.

The report carries everything the bench and the CI smoke assert on:
throughput, p50/p99 end-to-end latency, batching efficiency, and the
full response set (for bit-identity checks against serial inference).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import Histogram
from repro.serve.server import AnalogServer, ServeResult, ServerOverloaded


@dataclass
class LoadReport:
    """What a load run did and how the server held up."""

    requests: int
    completed: int
    rejected: int
    duration_s: float
    throughput_rps: float
    latency_us: dict
    batching_efficiency: float
    #: One ``(model, image_index, result)`` per completed request.
    responses: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_us": self.latency_us,
            "batching_efficiency": self.batching_efficiency,
        }


async def run_load(
    server: AnalogServer,
    models: list[str],
    images: np.ndarray,
    clients: int = 4,
    requests_per_client: int = 16,
    retry_overload: bool = True,
    retry_sleep_us: float = 500.0,
) -> LoadReport:
    """Drive ``clients`` closed-loop clients against a running server.

    Client ``c``'s ``i``-th request targets ``models[(c + i) % len]``
    with ``images[(c * requests_per_client + i) % len]`` — every client
    interleaves tenants, which is exactly the traffic shape that makes
    model-aware batching earn its keep.
    """
    if not models:
        raise ValueError("run_load needs at least one model name")
    if len(images) == 0:
        raise ValueError("run_load needs at least one image")
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be >= 1")
    loop = asyncio.get_running_loop()
    latency = Histogram()
    responses: list[tuple[str, int, ServeResult]] = []
    rejected = 0

    async def client(index: int) -> None:
        nonlocal rejected
        for i in range(requests_per_client):
            model = models[(index + i) % len(models)]
            image_index = (index * requests_per_client + i) % len(images)
            while True:
                start = loop.time()
                try:
                    result = await server.submit(model, images[image_index])
                except ServerOverloaded:
                    rejected += 1
                    if not retry_overload:
                        break
                    await asyncio.sleep(retry_sleep_us / 1e6)
                    continue
                latency.observe((loop.time() - start) * 1e6)
                responses.append((model, image_index, result))
                break

    start = loop.time()
    await asyncio.gather(*(client(c) for c in range(clients)))
    duration = loop.time() - start
    stats = server.stats()
    completed = len(responses)
    return LoadReport(
        requests=clients * requests_per_client,
        completed=completed,
        rejected=rejected,
        duration_s=duration,
        throughput_rps=completed / duration if duration > 0 else 0.0,
        latency_us=latency.as_dict(),
        batching_efficiency=stats.batching_efficiency,
        responses=responses,
    )
