"""Crossbar circuit solver: physics sanity checks."""

import numpy as np
import pytest

from repro.xbar.circuit import CircuitConfig, CrossbarCircuit
from repro.xbar.device import DeviceConfig, RRAMDevice


def make_solver(rows=8, cols=8, r_source=350.0, r_sink=350.0, r_wire=4.0, iv_beta=0.25):
    device = DeviceConfig(r_on=100e3, iv_beta=iv_beta)
    circuit = CircuitConfig(
        rows=rows, cols=cols, r_source=r_source, r_sink=r_sink, r_wire=r_wire
    )
    return CrossbarCircuit(circuit, device), device


@pytest.fixture
def workload(rng):
    device = DeviceConfig(r_on=100e3)
    rram = RRAMDevice(device)
    levels = rng.integers(0, device.num_levels, size=(8, 8))
    conductances = rram.level_to_conductance(levels)
    voltages = rng.random(8) * device.v_read
    return voltages, conductances


class TestConfigValidation:
    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            CircuitConfig(rows=0, cols=8)

    def test_rejects_negative_resistance(self):
        with pytest.raises(ValueError):
            CircuitConfig(r_source=-1.0)


class TestSolverPhysics:
    def test_near_ideal_parasitics_recover_vg(self, workload):
        voltages, conductances = workload
        solver, _ = make_solver(r_source=1e-6, r_sink=1e-6, r_wire=1e-9, iv_beta=0.0)
        currents = solver.solve(voltages, conductances)
        ideal = voltages @ conductances
        np.testing.assert_allclose(currents, ideal, rtol=1e-4)

    def test_parasitics_always_reduce_current(self, workload):
        voltages, conductances = workload
        solver, _ = make_solver()
        currents = solver.solve(voltages, conductances)
        ideal = voltages @ conductances
        assert (currents <= ideal + 1e-15).all()
        assert (currents > 0).all()

    def test_more_wire_resistance_more_deviation(self, workload):
        voltages, conductances = workload
        low, _ = make_solver(r_wire=1.0)
        high, _ = make_solver(r_wire=20.0)
        ideal = voltages @ conductances
        dev_low = (ideal - low.solve(voltages, conductances)).sum()
        dev_high = (ideal - high.solve(voltages, conductances)).sum()
        assert dev_high > dev_low

    def test_zero_input_zero_output(self, workload):
        _, conductances = workload
        solver, _ = make_solver()
        currents = solver.solve(np.zeros(8), conductances)
        np.testing.assert_allclose(currents, np.zeros(8), atol=1e-18)

    def test_linearity_for_linear_devices(self, workload):
        """With iv_beta=0 the network is linear: I(2V) = 2 I(V)."""
        voltages, conductances = workload
        solver, _ = make_solver(iv_beta=0.0)
        i1 = solver.solve(voltages, conductances)
        i2 = solver.solve(2.0 * voltages, conductances)
        np.testing.assert_allclose(i2, 2.0 * i1, rtol=1e-9)

    def test_batch_matches_individual_solves(self, workload, rng):
        voltages, conductances = workload
        batch = np.stack([voltages, 0.5 * voltages, rng.random(8) * 0.25])
        solver, _ = make_solver()
        batched = solver.solve(batch, conductances)
        for k in range(3):
            single = solver.solve(batch[k], conductances)
            np.testing.assert_allclose(batched[k], single, rtol=1e-12)

    def test_single_vector_returns_1d(self, workload):
        voltages, conductances = workload
        solver, _ = make_solver()
        assert solver.solve(voltages, conductances).shape == (8,)

    def test_shape_validation(self, workload):
        voltages, conductances = workload
        solver, _ = make_solver()
        with pytest.raises(ValueError):
            solver.solve(voltages[:4], conductances)
        with pytest.raises(ValueError):
            solver.solve(voltages, conductances[:4])

    def test_ideal_currents_helper(self, workload):
        voltages, conductances = workload
        solver, _ = make_solver()
        np.testing.assert_allclose(
            solver.ideal_currents(voltages, conductances), voltages @ conductances
        )

    def test_nonlinear_iterations_change_result(self, workload):
        """With strong device nonlinearity, the fixed-point update matters."""
        voltages, conductances = workload
        device = DeviceConfig(r_on=100e3, iv_beta=2.0)
        one = CrossbarCircuit(
            CircuitConfig(rows=8, cols=8, nonlinear_iterations=1), device
        ).solve(voltages, conductances)
        three = CrossbarCircuit(
            CircuitConfig(rows=8, cols=8, nonlinear_iterations=3), device
        ).solve(voltages, conductances)
        assert not np.allclose(one, three)

    def test_superposition_of_rows(self, rng):
        """Linear network: driving rows separately sums to driving together."""
        solver, device = make_solver(iv_beta=0.0)
        rram = RRAMDevice(device)
        conductances = rram.level_to_conductance(rng.integers(0, 4, size=(8, 8)))
        v_a = np.zeros(8)
        v_a[0] = 0.2
        v_b = np.zeros(8)
        v_b[5] = 0.1
        together = solver.solve(v_a + v_b, conductances)
        separate = solver.solve(v_a, conductances) + solver.solve(v_b, conductances)
        np.testing.assert_allclose(together, separate, rtol=1e-9)
