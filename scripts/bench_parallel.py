#!/usr/bin/env python
"""Parallel-backend benchmark: BENCH_15_parallel.json.

Times the shared-memory process-pool backend (``repro.parallel``)
against serial execution for the two dominant batch-axis workloads:

* hardware evaluation — ``evaluate_accuracy`` of a non-ideal ResNet-20
  (GENIEx predictor) over an image batch;
* Square attack — the per-image random-search loop on the same model.

Each workload runs serially and with 2- and 4-worker pools; the bench
asserts **bit-identity** between all runs (that is the backend's
contract) and records honest wall times.  On a single-core container
the pools cannot beat serial — ``cpu_count`` is recorded alongside the
timings so readers can interpret the speedup column.

Scale via ``REPRO_BENCH_PROFILE`` (tiny | small | default; defaults to
``tiny`` for CI).  No timing assertions; trends are tracked across
commits.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.attacks.square import SquareAttack  # noqa: E402
from repro.nn.resnet import resnet20  # noqa: E402
from repro.obs.sink import runtime_stamp  # noqa: E402
from repro.parallel import parallel_backend  # noqa: E402
from repro.train.trainer import evaluate_accuracy  # noqa: E402
from repro.xbar.engine_cache import config_digest  # noqa: E402
from repro.xbar.presets import crossbar_preset, load_or_train_geniex  # noqa: E402
from repro.xbar.simulator import convert_to_hardware  # noqa: E402

PRESET = "32x32_100k"

PROFILES = {
    # (eval images, shard size, square queries, timing repeats)
    "tiny": (16, 4, 4, 1),
    "small": (64, 8, 10, 2),
    "default": (256, 16, 30, 3),
}

WORKER_COUNTS = (2, 4)


def profile_name() -> str:
    return os.environ.get("REPRO_BENCH_PROFILE", "tiny")


def best_of(fn, repeats: int):
    """(min wall time, last result) over ``repeats`` runs."""
    times, result = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), result


def bench_workload(name, fn, repeats: int, identical) -> dict:
    serial_seconds, serial_result = best_of(fn, repeats)
    entry = {
        "serial_seconds": serial_seconds,
        "workers": {},
        "bit_identical": True,
    }
    for workers in WORKER_COUNTS:
        with parallel_backend(workers):
            seconds, result = best_of(fn, repeats)
        matches = bool(identical(serial_result, result))
        entry["workers"][str(workers)] = {
            "seconds": seconds,
            "speedup": serial_seconds / seconds if seconds > 0 else float("inf"),
            "bit_identical": matches,
        }
        entry["bit_identical"] &= matches
        print(
            f"[bench_parallel] {name}: serial {serial_seconds:.2f} s, "
            f"{workers} workers {seconds:.2f} s "
            f"({serial_seconds / seconds:.2f}x, identical={matches})"
        )
    return entry


def main() -> int:
    profile = profile_name()
    if profile not in PROFILES:
        print(f"unknown REPRO_BENCH_PROFILE {profile!r}; use one of {sorted(PROFILES)}")
        return 2
    eval_size, shard_size, square_queries, repeats = PROFILES[profile]
    config = crossbar_preset(PRESET)
    geniex = load_or_train_geniex(config)
    cpu_count = os.cpu_count()
    print(f"[bench_parallel] profile={profile} preset={PRESET} cpu_count={cpu_count}")

    model = resnet20(num_classes=10, width=8)
    model.eval()
    hardware = convert_to_hardware(
        model, config, predictor=geniex, rng=np.random.default_rng(2),
        engine_cache=False,
    )
    rng = np.random.default_rng(0)
    x = rng.random((eval_size, 3, 16, 16)).astype(np.float32)
    y = (np.arange(eval_size) % 10).astype(np.int64)

    evaluation = bench_workload(
        "evaluate_accuracy",
        lambda: evaluate_accuracy(hardware, x, y, batch_size=shard_size),
        repeats,
        lambda a, b: a == b,
    )
    square = bench_workload(
        "square attack",
        lambda: SquareAttack(
            8 / 255, max_queries=square_queries, seed=3, batch_size=shard_size
        ).generate(hardware, x, y),
        repeats,
        lambda a, b: a.x_adv.tobytes() == b.x_adv.tobytes()
        and (a.queries == b.queries).all(),
    )

    if not (evaluation["bit_identical"] and square["bit_identical"]):
        print("[bench_parallel] ERROR: parallel results diverged from serial")
        return 1

    payload = runtime_stamp(
        extra={
            "bench": "parallel",
            "profile": profile,
            "preset": PRESET,
            "cpu_count": cpu_count,
            "config_digest": config_digest(config),
            "workloads": {
                "eval_size": eval_size,
                "shard_size": shard_size,
                "square_queries": square_queries,
                "repeats": repeats,
            },
        }
    )
    payload.update({"evaluate_accuracy": evaluation, "square_attack": square})
    out_path = REPO_ROOT / "BENCH_15_parallel.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_parallel] wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
