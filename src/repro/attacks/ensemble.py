"""Ensemble black-box attack (§III-C.1a of the paper).

Pipeline (following Papernot-style surrogate attacks + Hang et al. [34]):

1. The attacker queries the victim on training images and records the
   pre-softmax logits, building a synthetic (image, logits) dataset.
   The victim may be the digital model (non-adaptive) or a crossbar
   hardware model (hardware-in-loop adaptive).
2. Three surrogate ResNets (ResNet-10/20/32 in the paper) are distilled
   on the synthetic dataset with soft cross-entropy.
3. Adversarial images are generated with PGD against the *stack
   parallel* ensemble — members are combined in parallel by averaging
   their logits — and then transferred to the defender.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.attacks.base import AttackResult, predict_logits
from repro.attacks.pgd import PGD
from repro.autograd.tensor import Tensor
from repro.data.datasets import ArrayDataset, DataLoader
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.resnet import build_model
from repro.obs.trace import span as _span
from repro.parallel.backend import ShardTask, get_backend
from repro.train.optim import SGD
from repro.train.schedule import CosineLR


class StackedEnsemble(Module):
    """Stack-parallel ensemble: member logits are averaged."""

    def __init__(self, members: Sequence[Module]):
        super().__init__()
        if not members:
            raise ValueError("ensemble needs at least one member")
        for i, member in enumerate(members):
            setattr(self, f"member{i}", member)

    def forward(self, x: Tensor) -> Tensor:
        outputs = [member(x) for member in self.children()]
        total = outputs[0]
        for out in outputs[1:]:
            total = total + out
        return total * (1.0 / len(outputs))


@dataclass
class SurrogateSpec:
    """Architecture recipe for one surrogate model."""

    arch: str
    width: int = 8
    seed: int = 0


@dataclass
class EnsembleConfig:
    """Hyper-parameters of the surrogate distillation."""

    surrogates: list[SurrogateSpec] = field(
        default_factory=lambda: [
            SurrogateSpec("resnet10", seed=101),
            SurrogateSpec("resnet20", seed=102),
            SurrogateSpec("resnet32", seed=103),
        ]
    )
    distill_epochs: int = 10
    batch_size: int = 128
    lr: float = 0.05
    query_batch: int = 256


def distill_member(
    spec: SurrogateSpec,
    images: np.ndarray,
    soft_targets: np.ndarray,
    config: EnsembleConfig,
    num_classes: int,
    verbose: bool = False,
) -> Module:
    """Build and distill one surrogate on the synthetic dataset.

    Module-level (not a method) so pool workers can run one surrogate
    per task; everything it consumes arrives in the task payload.
    """
    member = build_model(
        spec.arch, num_classes=num_classes, width=spec.width, seed=spec.seed
    )
    dataset = ArrayDataset(images, np.arange(len(images)))  # labels = indices
    loader = DataLoader(
        dataset, batch_size=config.batch_size, shuffle=True, seed=spec.seed
    )
    optimizer = SGD(member.parameters(), lr=config.lr, momentum=0.9, weight_decay=5e-4)
    schedule = CosineLR(config.lr, config.distill_epochs)
    member.train()
    for epoch in range(config.distill_epochs):
        optimizer.lr = schedule.lr_at(epoch)
        losses = []
        for batch_images, batch_indices in loader:
            logits = member(Tensor(batch_images))
            loss = F.soft_cross_entropy(logits, soft_targets[batch_indices])
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        if verbose:
            print(f"[ensemble] {spec.arch} epoch {epoch} loss {np.mean(losses):.4f}")
    member.eval()
    return member


class EnsembleBlackBox:
    """Surrogate-distillation ensemble black-box attack."""

    def __init__(
        self,
        epsilon: float,
        iterations: int = 30,
        config: EnsembleConfig | None = None,
        seed: int = 0,
    ):
        self.epsilon = epsilon
        self.iterations = iterations
        self.config = config or EnsembleConfig()
        self.seed = seed
        self.ensemble: StackedEnsemble | None = None
        self._num_classes: int | None = None

    # ------------------------------------------------------------------
    # Step 1 + 2: query the victim and distill surrogates
    # ------------------------------------------------------------------
    def fit(
        self,
        victim: Module | Callable[[np.ndarray], np.ndarray],
        images: np.ndarray,
        verbose: bool = False,
    ) -> "EnsembleBlackBox":
        """Build the synthetic dataset and train the surrogate ensemble.

        ``victim`` is either a model (queried for logits) or a raw query
        function mapping image batches to logits.  Only logits are used
        — the attacker never sees weights or internal activations,
        matching the black-box rows of Table II.
        """
        cfg = self.config
        if len(images) == 0:
            raise ValueError("fit() needs at least one query image")
        with _span("attack/ensemble/query"):
            if isinstance(victim, Module):
                victim_logits = predict_logits(victim, images, cfg.query_batch)
            else:
                victim_logits = None
                for s in range(0, len(images), cfg.query_batch):
                    logits = np.asarray(victim(images[s : s + cfg.query_batch]))
                    if victim_logits is None:
                        victim_logits = np.empty(
                            (len(images), logits.shape[1]), dtype=logits.dtype
                        )
                    victim_logits[s : s + len(logits)] = logits
        self._num_classes = victim_logits.shape[1]
        # Soft targets: the victim's output distribution.
        shifted = victim_logits - victim_logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)

        backend = get_backend()
        with _span("attack/ensemble/distill"):
            if backend.workers > 1 and len(cfg.surrogates) > 1:
                # One worker task per surrogate.  Distillation is
                # deterministic per spec (loader shuffle and init are
                # seeded), so training in a pool worker and restoring
                # the shipped state dict reproduces the serial member
                # bit for bit.
                tasks = [
                    ShardTask(
                        "distill",
                        {
                            "spec": spec,
                            "images": images,
                            "probs": probs,
                            "config": cfg,
                            "num_classes": self._num_classes,
                        },
                    )
                    for spec in cfg.surrogates
                ]
                states = backend.run_tasks(None, tasks)
                members = []
                for spec, state in zip(cfg.surrogates, states):
                    member = build_model(
                        spec.arch,
                        num_classes=self._num_classes,
                        width=spec.width,
                        seed=spec.seed,
                    )
                    member.load_state_dict(state)
                    member.eval()
                    members.append(member)
            else:
                members = [
                    distill_member(
                        spec, images, probs, cfg, self._num_classes, verbose=verbose
                    )
                    for spec in cfg.surrogates
                ]
        self.ensemble = StackedEnsemble(members)
        self.ensemble.eval()
        return self

    # ------------------------------------------------------------------
    # Step 3: PGD on the stacked ensemble
    # ------------------------------------------------------------------
    def generate(self, x: np.ndarray, y: np.ndarray) -> AttackResult:
        """PGD against the surrogate ensemble (requires :meth:`fit`)."""
        if self.ensemble is None:
            raise RuntimeError("call fit() before generate()")
        pgd = PGD(self.epsilon, iterations=self.iterations, seed=self.seed)
        pgd._obs_name = "ensemble_pgd"  # surrogate-ensemble PGD curve
        return pgd.generate(self.ensemble, x, y)
