"""Cross-cutting attack/hardware properties at tiny scale.

These tests pin down behavioural relationships that the paper's story
depends on, beyond per-component correctness:

* attack images are valid images (domain constraints survive pipelines);
* hardware models are *fixed functions* (no per-query randomness), which
  is what separates intrinsic robustness from stochastic defenses;
* transfer direction: attacks are strongest where they were crafted.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.attacks import PGD, SquareAttack
from repro.attacks.base import predict_logits
from repro.attacks.hil import hil_square_attack, hil_whitebox_pgd
from repro.core.evaluation import adversarial_accuracy
from repro.verify.contracts import assert_attack_contract
from repro.verify.strategies import attack_budgets
from repro.xbar.simulator import convert_to_hardware

from tests.conftest import make_tiny_crossbar_config


@pytest.fixture(scope="module")
def duo(tiny_victim, tiny_task, tiny_geniex):
    hardware = convert_to_hardware(
        tiny_victim,
        make_tiny_crossbar_config(),
        predictor=tiny_geniex,
        calibration_images=tiny_task.x_train[:16],
    )
    return tiny_victim, hardware


class TestDomainConstraintsSurviveComposition:
    def test_pgd_then_square_still_valid(self, duo, tiny_task):
        """Chained attacks (ensemble pipelines do this) keep images valid."""
        victim, _hw = duo
        x, y = tiny_task.x_test[:10], tiny_task.y_test[:10]
        first = PGD(8 / 255, iterations=2).generate(victim, x, y).x_adv
        second = SquareAttack(8 / 255, max_queries=5).generate(victim, first, y).x_adv
        assert second.min() >= 0.0 and second.max() <= 1.0
        # Total perturbation from the *original* is at most the sum of
        # budgets (the second attack re-centers on `first`).
        assert (np.abs(second - x) <= 16 / 255 + 1e-5).all()

    def test_adversarial_images_are_float32(self, duo, tiny_task):
        victim, _hw = duo
        x, y = tiny_task.x_test[:6], tiny_task.y_test[:6]
        assert PGD(8 / 255, iterations=1).generate(victim, x, y).x_adv.dtype == np.float32


class TestFixedFunctionHardware:
    def test_hardware_logits_reproducible_across_queries(self, duo, tiny_task):
        _victim, hardware = duo
        x = tiny_task.x_test[:8]
        a = predict_logits(hardware, x)
        b = predict_logits(hardware, x)
        np.testing.assert_allclose(a, b)

    def test_hardware_independent_of_batch_composition(self, duo, tiny_task):
        """Dynamic input quantization uses a per-call max: grouping the
        same images differently must not change results materially."""
        _victim, hardware = duo
        x = tiny_task.x_test[:8]
        whole = predict_logits(hardware, x, batch_size=8)
        split = np.concatenate(
            [predict_logits(hardware, x[:4], batch_size=4), predict_logits(hardware, x[4:], batch_size=4)]
        )
        # Exact equality needs identical per-batch maxima (the dynamic
        # quantization grid); different grouping perturbs logits but the
        # function must stay essentially the same.
        corr = np.corrcoef(whole.ravel(), split.ravel())[0, 1]
        assert corr > 0.97
        assert (whole.argmax(axis=1) == split.argmax(axis=1)).mean() >= 0.75

    def test_two_conversions_same_function(self, tiny_victim, tiny_geniex, tiny_task):
        """Programming without write noise is deterministic."""
        config = make_tiny_crossbar_config()
        a = convert_to_hardware(tiny_victim, config, predictor=tiny_geniex)
        b = convert_to_hardware(tiny_victim, config, predictor=tiny_geniex)
        x = tiny_task.x_test[:6]
        np.testing.assert_allclose(predict_logits(a, x), predict_logits(b, x), rtol=1e-5)


@pytest.mark.verify
class TestAttackContractProperties:
    """Every attack respects the eps ball + [0, 1] domain, exactly.

    Budgets (epsilon, alpha, steps/queries, seed) are drawn from
    :func:`repro.verify.strategies.attack_budgets`, which includes the
    degenerate corners — epsilon 0, alpha larger than the ball — where
    a missing projection step would escape.  The contract is checked
    with *no* tolerance (see :mod:`repro.verify.contracts`).
    """

    @settings(max_examples=8, deadline=None)
    @given(budget=attack_budgets())
    def test_pgd_respects_contract(self, duo, tiny_task, budget):
        victim, _hw = duo
        x, y = tiny_task.x_test[:4], tiny_task.y_test[:4]
        pgd = PGD(
            budget["epsilon"],
            iterations=budget["steps"],
            alpha=budget["alpha"],
            seed=budget["seed"],
        )
        assert_attack_contract(
            pgd.generate(victim, x, y).x_adv, x, budget["epsilon"], label="pgd"
        )

    @settings(max_examples=6, deadline=None)
    @given(budget=attack_budgets())
    def test_square_respects_contract(self, duo, tiny_task, budget):
        victim, _hw = duo
        x, y = tiny_task.x_test[:4], tiny_task.y_test[:4]
        attack = SquareAttack(
            budget["epsilon"], max_queries=3 * budget["steps"], seed=budget["seed"]
        )
        assert_attack_contract(
            attack.generate(victim, x, y).x_adv, x, budget["epsilon"], label="square"
        )

    @settings(max_examples=3, deadline=None)
    @given(budget=attack_budgets())
    def test_hil_pgd_respects_contract(self, duo, tiny_task, budget):
        """Hardware-in-loop gradients change nothing about the ball."""
        _victim, hardware = duo
        x, y = tiny_task.x_test[:2], tiny_task.y_test[:2]
        result = hil_whitebox_pgd(
            hardware, x, y, budget["epsilon"],
            iterations=budget["steps"], seed=budget["seed"],
        )
        assert_attack_contract(result.x_adv, x, budget["epsilon"], label="hil_pgd")

    @settings(max_examples=3, deadline=None)
    @given(budget=attack_budgets())
    def test_hil_square_respects_contract(self, duo, tiny_task, budget):
        _victim, hardware = duo
        x, y = tiny_task.x_test[:2], tiny_task.y_test[:2]
        result = hil_square_attack(
            hardware, x, y, budget["epsilon"],
            max_queries=budget["steps"], seed=budget["seed"],
        )
        assert_attack_contract(result.x_adv, x, budget["epsilon"], label="hil_square")


class TestTransferDirection:
    def test_attack_strongest_on_crafting_model(self, duo, tiny_task):
        """PGD crafted on digital hurts digital at least as much as it
        hurts the hardware (up to small-sample noise) — the intrinsic
        robustness direction."""
        victim, hardware = duo
        x, y = tiny_task.x_test[:48], tiny_task.y_test[:48]
        x_adv = PGD(24 / 255, iterations=6).generate(victim, x, y).x_adv
        on_digital = adversarial_accuracy(victim, x_adv, y)
        on_hardware = adversarial_accuracy(hardware, x_adv, y)
        assert on_hardware >= on_digital - 0.1

    def test_epsilon_zero_attack_changes_nothing(self, duo, tiny_task):
        victim, hardware = duo
        x, y = tiny_task.x_test[:12], tiny_task.y_test[:12]
        x_adv = PGD(0.0, iterations=3).generate(victim, x, y).x_adv
        assert adversarial_accuracy(hardware, x_adv, y) == adversarial_accuracy(hardware, x, y)
