"""Integer-quantized inference mode (``repro.xbar.quant``).

Unit and property tests for the int8 pulse-expansion path: the shared
``quantize_affine`` primitive, plane split/reassemble, the exact
integer MVM, the engine's static-scale lifecycle (calibration installs
the scale, ``clone_pristine``/``restore_engine`` reset it), and the
numerics contract — the integer path must be bit-identical across the
compiled C kernels and the pure-numpy fallback, which the module-level
``kernels`` fixture enforces by running *every* test in both modes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.tensor import Tensor
from repro.nn.layers import Linear
from repro.verify import invariants as inv
from repro.verify.oracle import naive_plane_split
from repro.verify.runner import _cases, tiny_config
from repro.xbar import _ckernels
from repro.xbar.faults import GuardConfig
from repro.xbar.quant import (
    PlaneWorkspace,
    QuantConfig,
    compute_scale,
    integer_mvm,
    plane_count,
    plane_reassemble,
    plane_split,
    quantize_affine,
    with_quant,
)
from repro.xbar.simulator import (
    CrossbarEngine,
    IdealPredictor,
    NonIdealLinear,
    calibrate_hardware,
    restore_engine,
    snapshot_engine,
)


@pytest.fixture(params=["compiled", "pure"])
def kernels(request, monkeypatch):
    """Run the test under the compiled C kernels and the numpy fallback."""
    if request.param == "compiled":
        if not _ckernels.available():
            pytest.skip("no C compiler in this environment")
    else:
        monkeypatch.setattr(_ckernels, "available", lambda: False)
    return request.param


def _quant_config(**kwargs) -> "object":
    adc_bits = kwargs.pop("adc_bits", 6)
    qc = QuantConfig(
        mode="int8",
        input_bits=kwargs.pop("input_bits", 8),
        stream_bits=kwargs.pop("stream_bits", 8),
    )
    return with_quant(tiny_config(adc_bits=adc_bits, **kwargs), qc)


def _quant_engine(weight, config, x, seed=11):
    engine = CrossbarEngine(weight, config, IdealPredictor(), np.random.default_rng(seed))
    engine.set_input_scale(compute_scale(float(np.abs(x).max()), config.quant.half_level))
    return engine


class TestQuantConfig:
    def test_defaults_off(self):
        qc = QuantConfig()
        assert qc.mode == "off" and not qc.enabled

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="quant mode"):
            QuantConfig(mode="int4")

    @pytest.mark.parametrize("bits", [1, 17])
    def test_invalid_input_bits(self, bits):
        with pytest.raises(ValueError, match="input_bits"):
            QuantConfig(mode="int8", input_bits=bits)

    def test_invalid_stream_bits(self):
        with pytest.raises(ValueError, match="stream_bits"):
            QuantConfig(mode="int8", stream_bits=0)

    def test_derived_properties(self):
        qc = QuantConfig(mode="int8", input_bits=8, stream_bits=8)
        assert qc.half_level == 127
        assert qc.magnitude_bits == 7
        assert qc.num_planes == 1  # one full-width plane per sign pass
        assert qc.plane_levels == 2**7
        qc2 = QuantConfig(mode="int8", input_bits=6, stream_bits=2)
        assert (qc2.half_level, qc2.magnitude_bits, qc2.num_planes) == (31, 5, 3)
        assert qc2.plane_levels == 4


class TestQuantizeAffine:
    def test_exactly_one_scale_form(self, rng):
        x = rng.random(8)
        with pytest.raises(ValueError, match="exactly one"):
            quantize_affine(x, top=15)
        with pytest.raises(ValueError, match="exactly one"):
            quantize_affine(x, scale=0.1, inv_scale=10.0, top=15)

    def test_divide_form_matches_chain(self, rng):
        x = rng.normal(size=(5, 9))
        scale = 0.031
        got = quantize_affine(x, scale=scale, top=127, symmetric=True, dtype=np.int32)
        want = np.clip(np.rint(x / scale), -127, 127).astype(np.int32)
        assert np.array_equal(got, want)

    def test_multiply_form_matches_chain(self, rng):
        x = rng.random((4, 7))
        levels = 15
        got = quantize_affine(x, inv_scale=levels, top=levels)
        assert np.array_equal(got, np.clip(np.rint(x * levels), 0, levels))

    def test_work_and_out_buffers_are_pure_hoists(self, rng):
        x = rng.normal(size=(6, 6))
        work = np.empty_like(x)
        out = np.empty(x.shape, dtype=np.int32)
        plain = quantize_affine(x, scale=0.07, top=31, symmetric=True, dtype=np.int32)
        buffered = quantize_affine(
            x, scale=0.07, top=31, symmetric=True, dtype=np.int32, work=work, out=out
        )
        assert buffered is out
        assert np.array_equal(plain, buffered)

    @given(
        amax=st.floats(1e-6, 1e3, allow_nan=False, allow_infinity=False),
        bits=st.integers(2, 16),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_within_half_step(self, amax, bits, data):
        """|x - dequant(quant(x))| <= scale/2 for in-range inputs."""
        half = 2 ** (bits - 1) - 1
        scale = compute_scale(amax, half)
        x = np.asarray(
            data.draw(
                st.lists(st.floats(-amax, amax, allow_nan=False), min_size=1, max_size=32)
            )
        )
        codes = quantize_affine(x, scale=scale, top=half, symmetric=True, dtype=np.int64)
        assert int(np.abs(codes).max()) <= half
        assert float(np.abs(codes * scale - x).max()) <= scale / 2 * (1 + 1e-12)

    def test_compute_scale_degenerate(self):
        assert compute_scale(0.0, 127) == 1.0
        assert compute_scale(-3.0, 127) == 1.0
        assert compute_scale(12.7, 127) == pytest.approx(0.1)


class TestPlanes:
    @given(
        mb=st.integers(1, 15),
        sb=st.integers(1, 8),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_split_reassemble_identity(self, mb, sb, data):
        values = np.asarray(
            data.draw(
                st.lists(st.integers(0, 2**mb - 1), min_size=1, max_size=48)
            ),
            dtype=np.int64,
        )
        planes = plane_split(values, mb, sb)
        assert len(planes) == plane_count(mb, sb)
        for plane in planes:
            assert int(plane.min()) >= 0 and int(plane.max()) < 2**sb
        assert np.array_equal(plane_reassemble(planes, sb), values)

    def test_fast_split_matches_naive(self):
        for mb, sb in ((7, 8), (7, 2), (5, 2), (7, 3), (4, 1), (15, 4)):
            values = np.arange(2**mb, dtype=np.int64).reshape(2, -1)
            fast = plane_split(values, mb, sb)
            naive = naive_plane_split(values, mb, sb)
            assert len(fast) == len(naive)
            for p, q in zip(fast, naive):
                assert np.array_equal(p, q)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="magnitudes must lie"):
            plane_split(np.array([8]), 3, 2)
        with pytest.raises(ValueError, match="magnitudes must lie"):
            plane_split(np.array([-1]), 3, 2)

    def test_reassemble_needs_planes(self):
        with pytest.raises(ValueError, match="at least one plane"):
            plane_reassemble([], 2)

    def test_workspace_matches_unbuffered(self, rng):
        qc = QuantConfig(mode="int8", input_bits=6, stream_bits=2)
        ws = PlaneWorkspace()
        x = rng.normal(0, 0.3, size=(5, 11))
        scale = compute_scale(float(np.abs(x).max()), qc.half_level)
        codes = ws.quantize(x, scale, qc)
        want = np.clip(np.rint(x / scale), -qc.half_level, qc.half_level).astype(np.int32)
        assert np.array_equal(codes, want)
        for sign in (1, -1):
            mags = ws.magnitudes(codes, sign)
            assert np.array_equal(mags, np.maximum(sign * want, 0))
            planes = ws.planes(mags, qc)
            assert np.array_equal(
                plane_reassemble(planes, qc.stream_bits), np.maximum(sign * want, 0)
            )


class TestIntegerMVM:
    def test_exact_vs_int64_matmul(self, kernels, rng):
        a = rng.integers(-(2**15), 2**15, size=(7, 13)).astype(np.int32)
        b = rng.integers(-(2**15), 2**15, size=(13, 5)).astype(np.int32)
        out = integer_mvm(a, b)
        assert out.dtype == np.int64
        assert np.array_equal(out, a.astype(np.int64) @ b.astype(np.int64))

    def test_no_int32_overflow(self, kernels):
        # Products near 2**30 summed over many rows exceed int32.
        a = np.full((1, 64), 2**15 - 1, dtype=np.int32)
        b = np.full((64, 1), 2**15 - 1, dtype=np.int32)
        assert integer_mvm(a, b)[0, 0] == 64 * (2**15 - 1) ** 2

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="incompatible shapes"):
            integer_mvm(np.zeros((2, 3), np.int32), np.zeros((4, 2), np.int32))


class TestEngineIntegerPath:
    """The engine-level contract, in both compiled-kernel modes."""

    def test_kernels_match_oracle(self, kernels, rng):
        weight, x = _cases(rng)
        inv.check_quant_kernels_match_oracle(weight, _quant_config(), IdealPredictor(), x)

    def test_kernels_match_oracle_multiplane(self, kernels, rng):
        weight, x = _cases(rng)
        config = _quant_config(input_bits=6, stream_bits=2, program_sigma=0.05)
        inv.check_quant_kernels_match_oracle(weight, config, IdealPredictor(), x, seed=5)

    def test_guard_fallback_int_path(self, kernels, rng):
        weight, x = _cases(rng)
        config = _quant_config(guard=GuardConfig(mode="fallback", saturation_factor=0.05))
        inv.check_quant_kernels_match_oracle(weight, config, IdealPredictor(), x)

    def test_float_fallback_until_calibrated(self, kernels, rng):
        weight, x = _cases(rng)
        inv.check_quant_float_fallback(weight, _quant_config(), IdealPredictor(), x)

    def test_batch_independence(self, kernels, rng):
        weight, x = _cases(rng)
        inv.check_quant_batch_independence(weight, _quant_config(), IdealPredictor(), x)

    def test_zero_and_empty(self, rng):
        weight, _x = _cases(rng)
        inv.check_quant_zero_and_empty(weight, _quant_config(), IdealPredictor())

    def test_requires_adc(self, rng):
        weight, _x = _cases(rng)
        inv.check_quant_requires_adc(weight, IdealPredictor())

    def test_perf_counters(self, rng):
        weight, x = _cases(rng)
        config = _quant_config(input_bits=6, stream_bits=2)
        engine = _quant_engine(weight, config, x)
        before = engine.perf.int_matvec_calls
        engine.matvec(x)
        assert engine.perf.int_matvec_calls == before + 1
        assert engine.perf.planes_evaluated > 0
        # Small-magnitude inputs leave the high-order pulse planes
        # empty; those planes are skipped, not driven.
        skipped_before = engine.perf.planes_skipped
        engine.matvec(x * 0.1)
        assert engine.perf.planes_skipped > skipped_before
        # An all-zero batch skips whole sign passes: nothing evaluated.
        evaluated = engine.perf.planes_evaluated
        engine.matvec(np.zeros((2, weight.shape[1])))
        assert engine.perf.planes_evaluated == evaluated
        assert engine.perf.int_sat_events == 0

    def test_set_input_scale_validation(self, rng):
        weight, _x = _cases(rng)
        engine = CrossbarEngine(weight, _quant_config(), IdealPredictor())
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="input scale"):
                engine.set_input_scale(bad)
        off = CrossbarEngine(weight, tiny_config(adc_bits=6), IdealPredictor())
        with pytest.raises(ValueError, match="quant.mode"):
            off.set_input_scale(0.5)

    def test_clone_pristine_resets_scale(self, rng):
        weight, x = _cases(rng)
        engine = _quant_engine(weight, _quant_config(), x)
        assert engine.quant_active
        clone = engine.clone_pristine()
        assert clone.x_scale is None and not clone.quant_active
        # The clone serves the float path until recalibrated...
        float_build = CrossbarEngine(
            weight, with_quant(_quant_config(), QuantConfig()), IdealPredictor(),
            np.random.default_rng(11),
        )
        assert np.array_equal(clone.matvec(x), float_build.matvec(x))
        # ...and rejoins the int path bit-for-bit once the scale is back.
        clone.set_input_scale(engine.x_scale)
        assert np.array_equal(clone.matvec(x), engine.matvec(x))

    def test_snapshot_restore_round_trip(self, kernels, rng):
        weight, x = _cases(rng)
        config = _quant_config()
        engine = _quant_engine(weight, config, x)
        snap = snapshot_engine(engine)
        assert snap is not None
        arrays, meta = snap
        restored = restore_engine(meta, arrays, config, IdealPredictor())
        assert restored.x_scale is None  # pristine restore: calibration re-arms
        restored.gain = engine.gain.copy()
        restored.set_input_scale(engine.x_scale)
        assert np.array_equal(restored.matvec(x), engine.matvec(x))


class TestCalibration:
    def _layer(self, rng, config, in_features=19, out_features=13):
        source = Linear(in_features, out_features, rng=np.random.default_rng(3))
        source.weight.data[...] = rng.normal(0, 0.4, size=(out_features, in_features))
        return NonIdealLinear(source, config, IdealPredictor(), np.random.default_rng(7))

    def test_two_pass_calibration_installs_scale(self, rng):
        config = _quant_config(gain_calibration=4)
        layer = self._layer(rng, config)
        assert layer.engine.x_scale is None
        images = rng.random((12, layer.in_features)).astype(np.float32) - 0.5
        calibrate_hardware(layer, images, batch_size=4)
        expected = compute_scale(
            float(np.abs(images).max()), config.quant.half_level
        )
        assert layer.engine.x_scale == expected
        assert layer.engine.quant_active
        # Gains were refit through the int path: the calibrated layer
        # serves integer matvecs immediately.
        before = layer.engine.perf.int_matvec_calls
        layer(Tensor(images[:4]))
        assert layer.engine.perf.int_matvec_calls == before + 1

    def test_recalibration_keeps_existing_scale(self, rng):
        config = _quant_config(gain_calibration=4)
        layer = self._layer(rng, config)
        images = rng.random((8, layer.in_features)).astype(np.float32) - 0.5
        calibrate_hardware(layer, images, batch_size=4)
        scale = layer.engine.x_scale
        # A later sweep with different (smaller) data must not move the
        # static scale — it only refits gains.
        calibrate_hardware(layer, images[:4] * 0.1, batch_size=2)
        assert layer.engine.x_scale == scale
