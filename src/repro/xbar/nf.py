"""Non-ideality Factor (NF): the paper's scalar non-ideality metric.

Table I defines ``NF = Avg[(Ideal_Output - NonIdeal_Output) / Ideal_Output]``
measured over sample MVMs.  NF is directly proportional to crossbar
size and inversely proportional to ON resistance (§III-A), which the
circuit solver reproduces from first principles.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.xbar.circuit import CircuitConfig, CrossbarCircuit
from repro.xbar.device import DeviceConfig, RRAMDevice


def non_ideality_factor(
    ideal: np.ndarray, nonideal: np.ndarray, min_ideal_fraction: float = 0.02
) -> float:
    """NF over paired output samples.

    Columns whose ideal output is below ``min_ideal_fraction`` of the
    maximum observed ideal output are excluded (relative deviation is
    ill-conditioned at near-zero outputs; the paper averages over
    meaningful outputs).
    """
    ideal = np.asarray(ideal, dtype=np.float64).ravel()
    nonideal = np.asarray(nonideal, dtype=np.float64).ravel()
    if ideal.shape != nonideal.shape:
        raise ValueError(f"shape mismatch: {ideal.shape} vs {nonideal.shape}")
    threshold = min_ideal_fraction * np.max(np.abs(ideal)) if ideal.size else 0.0
    mask = np.abs(ideal) > threshold
    if not mask.any():
        raise ValueError("no ideal outputs above threshold; cannot compute NF")
    return float(np.mean((ideal[mask] - nonideal[mask]) / ideal[mask]))


def sample_crossbar_workload(
    device: DeviceConfig,
    rows: int,
    cols: int,
    rng: np.random.Generator,
    num_matrices: int = 8,
    vectors_per_matrix: int = 16,
    input_sparsity_range: tuple[float, float] = (0.2, 0.8),
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Random (V, G) pairs statistically similar to DNN workloads.

    Conductances are uniform over device levels; voltages are sparse
    non-negative values on the DAC grid (activations after ReLU and
    bit-streaming are sparse and quantized).
    Returns a list of (voltages (vectors, rows), conductances (rows, cols)).
    """
    rram = RRAMDevice(device)
    workload = []
    for _ in range(num_matrices):
        levels = rng.integers(0, device.num_levels, size=(rows, cols))
        conductances = rram.program(levels, rng) if device.program_sigma > 0 else rram.level_to_conductance(levels)
        sparsity = rng.uniform(*input_sparsity_range)
        voltages = rng.random((vectors_per_matrix, rows)) * device.v_read
        mask = rng.random((vectors_per_matrix, rows)) < sparsity
        voltages = voltages * mask
        workload.append((voltages, conductances))
    return workload


def crossbar_nf(
    circuit: CircuitConfig,
    device: DeviceConfig,
    rng: np.random.Generator | None = None,
    num_matrices: int = 8,
    vectors_per_matrix: int = 16,
    solver: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> float:
    """Measure NF of a crossbar configuration from sampled workloads.

    ``solver`` defaults to the full circuit solver; pass a GENIEx
    ``predict`` function to measure the surrogate's NF instead (used to
    validate that the surrogate reproduces the circuit's NF).
    """
    rng = rng or np.random.default_rng(0)
    xbar = CrossbarCircuit(circuit, device)
    solve = solver or xbar.solve
    ideals = []
    nonideals = []
    workload = sample_crossbar_workload(
        device, circuit.rows, circuit.cols, rng, num_matrices, vectors_per_matrix
    )
    for voltages, conductances in workload:
        ideals.append(xbar.ideal_currents(voltages, conductances))
        nonideals.append(np.asarray(solve(voltages, conductances)))
    return non_ideality_factor(np.concatenate(ideals), np.concatenate(nonideals))
