"""Convolution: im2col/col2im round trips and gradient correctness."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients
from repro.nn.conv import avg_pool2d, col2im, conv2d, conv_output_size, im2col


def reference_conv2d(x, w, b, stride, padding):
    """Naive direct convolution for cross-checking."""
    n, c_in, h, w_in = x.shape
    c_out, _, kh, kw = w.shape
    h_out = conv_output_size(h, kh, stride, padding)
    w_out = conv_output_size(w_in, kw, stride, padding)
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, c_out, h_out, w_out))
    for i in range(h_out):
        for j in range(w_out):
            patch = xp[:, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
            out[:, :, i, j] = np.tensordot(patch, w, axes=([1, 2, 3], [1, 2, 3]))
    if b is not None:
        out += b.reshape(1, -1, 1, 1)
    return out


class TestOutputSize:
    def test_same_padding(self):
        assert conv_output_size(16, 3, 1, 1) == 16

    def test_stride_two(self):
        assert conv_output_size(16, 3, 2, 1) == 8

    def test_no_padding(self):
        assert conv_output_size(5, 3, 1, 0) == 3


class TestIm2col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = im2col(x, (3, 3), 1, 1)
        assert cols.shape == (2, 27, 64)

    def test_identity_kernel_patch_content(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        cols = im2col(x, (1, 1), 1, 0)
        np.testing.assert_allclose(cols[0, 0], x.ravel())

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint test."""
        x = rng.normal(size=(2, 3, 6, 6))
        y = rng.normal(size=(2, 27, 36))
        lhs = float((im2col(x, (3, 3), 1, 1) * y).sum())
        rhs = float((x * col2im(y, x.shape, (3, 3), 1, 1)).sum())
        assert abs(lhs - rhs) < 1e-8


class TestConv2dForward:
    def test_matches_reference_basic(self, rng):
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        b = rng.normal(size=(4,)).astype(np.float32)
        out = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=1, padding=1)
        ref = reference_conv2d(x, w, b, 1, 1)
        np.testing.assert_allclose(out.data, ref, rtol=1e-4, atol=1e-5)

    def test_matches_reference_strided(self, rng):
        x = rng.normal(size=(1, 2, 9, 9)).astype(np.float32)
        w = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
        out = conv2d(Tensor(x), Tensor(w), None, stride=2, padding=1)
        ref = reference_conv2d(x, w, None, 2, 1)
        np.testing.assert_allclose(out.data, ref, rtol=1e-4, atol=1e-5)

    def test_1x1_conv_is_channel_mix(self, rng):
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        w = rng.normal(size=(5, 3, 1, 1)).astype(np.float32)
        out = conv2d(Tensor(x), Tensor(w), None)
        ref = np.einsum("oc,nchw->nohw", w[:, :, 0, 0], x)
        np.testing.assert_allclose(out.data, ref, rtol=1e-4, atol=1e-5)

    def test_channel_mismatch_raises(self, rng):
        import pytest

        x = Tensor(rng.normal(size=(1, 3, 4, 4)).astype(np.float32))
        w = Tensor(rng.normal(size=(2, 4, 3, 3)).astype(np.float32))
        with pytest.raises(ValueError):
            conv2d(x, w, None)


class TestConv2dGradients:
    def test_gradcheck_all_inputs(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True, dtype=np.float64)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True, dtype=np.float64)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True, dtype=np.float64)
        check_gradients(lambda a, ww, bb: conv2d(a, ww, bb, 1, 1), [x, w, b])

    def test_gradcheck_strided_no_bias(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)), requires_grad=True, dtype=np.float64)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)), requires_grad=True, dtype=np.float64)
        check_gradients(lambda a, ww: conv2d(a, ww, None, 2, 1), [x, w])

    def test_avg_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True, dtype=np.float64)
        check_gradients(lambda a: avg_pool2d(a, 2), [x])


@settings(max_examples=15, deadline=None)
@given(
    h=st.integers(min_value=4, max_value=9),
    stride=st.sampled_from([1, 2]),
    padding=st.sampled_from([0, 1]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_conv_matches_reference(h, stride, padding, seed):
    """im2col conv == direct conv for random shapes/strides/paddings."""
    rng = np.random.default_rng(seed)
    kh = 3
    if h + 2 * padding < kh:
        return
    x = rng.normal(size=(1, 2, h, h)).astype(np.float32)
    w = rng.normal(size=(2, 2, kh, kh)).astype(np.float32)
    out = conv2d(Tensor(x), Tensor(w), None, stride=stride, padding=padding)
    ref = reference_conv2d(x, w, None, stride, padding)
    np.testing.assert_allclose(out.data, ref, rtol=1e-4, atol=1e-4)
