"""Random resize + random pad defense (Xie et al. [25]).

Two randomization layers in front of a pretrained model:

1. resize the input to a random size ``N in [size, size + range)`` with
   nearest-neighbor interpolation;
2. randomly zero-pad to the fixed final size ``size + range``.

The paper applies this to ImageNet (299→331); we scale the window to
our ImageNet-stand-in resolution.  The wrapped ResNet is fully
convolutional with global average pooling, so it accepts the enlarged
inputs unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.nn.module import Module


def resize_nearest(images: np.ndarray, out_size: int) -> np.ndarray:
    """Nearest-neighbor resize of (N, C, H, W) images to out_size^2."""
    n, c, h, w = images.shape
    rows = np.floor(np.arange(out_size) * h / out_size).astype(np.int64)
    cols = np.floor(np.arange(out_size) * w / out_size).astype(np.int64)
    return images[:, :, rows][:, :, :, cols]


class RandomResizePad(Module):
    """Randomized input transformation defense.

    Parameters
    ----------
    model:
        Pretrained network (must tolerate variable input sizes).
    pad_range:
        Sizes are drawn from ``[H, H + pad_range]``; the final padded
        size is ``H + pad_range`` (the paper's 299→331 window is ~10%
        of the input, matching the default here).
    """

    def __init__(self, model: Module, pad_range: int = 4, seed: int = 0):
        super().__init__()
        if pad_range < 1:
            raise ValueError(f"pad_range must be >= 1, got {pad_range}")
        self.model = model
        self.pad_range = pad_range
        self.rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        final = h + self.pad_range
        target = int(self.rng.integers(h, final + 1))
        with no_grad():
            resized = resize_nearest(x.data, target)
            pad_total = final - target
            top = int(self.rng.integers(0, pad_total + 1)) if pad_total else 0
            left = int(self.rng.integers(0, pad_total + 1)) if pad_total else 0
            padded = np.zeros((n, c, final, final), dtype=np.float32)
            padded[:, :, top : top + target, left : left + target] = resized

        # The randomization layers are non-differentiable lookups; for
        # gradient callers we use a straight-through approximation that
        # routes gradients back through the identity (attackers in the
        # paper's non-adaptive setting never differentiate the defense).
        def backward(grad: np.ndarray) -> None:
            if x.requires_grad:
                cropped = grad[:, :, top : top + target, left : left + target]
                x._accumulate(resize_nearest(cropped, h))

        return self.model(Tensor._make(padded, (x,), backward))

    def __repr__(self) -> str:
        return f"RandomResizePad(pad_range={self.pad_range})"
