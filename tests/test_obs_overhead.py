"""Disabled-path overhead guard: tracing off must stay within ~5%.

The instrumentation stays in hot paths permanently (layer forwards,
attack iterations, bank MVMs), which is only acceptable because the
disabled path is one module-global ``None`` check.  This test times a
tiny digital resnet20 forward — the worst case, because every
``Module.__call__`` pays the check but no expensive analog work
amortizes it — against a baseline with the check monkeypatched away.

Timing comparisons on shared CI are noisy, so the guard uses best-of-N
minima, interleaves the two variants, and allows a small number of
retries before declaring a real regression.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.nn.module import Module
from repro.nn.resnet import resnet20
from repro.obs import trace
from repro.obs.trace import _NULL_SPAN, span


def best_of(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_disabled_span_is_shared_and_allocation_free():
    """Structural half of the budget: no per-call object on the off path."""
    assert not trace.enabled()
    assert span("a") is span("b") is _NULL_SPAN


def test_disabled_overhead_under_budget(monkeypatch):
    assert not trace.enabled(), "tracing must be off for the overhead guard"
    model = resnet20(num_classes=10, width=8)
    model.eval()
    x = Tensor(np.random.default_rng(0).random((32, 3, 16, 16)).astype(np.float32))

    instrumented_call = Module.__call__

    def plain_call(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def run():
        with no_grad():
            model(x)

    budget, attempts = 1.05, 3
    ratios = []
    for _ in range(attempts):
        monkeypatch.setattr(Module, "__call__", plain_call)
        baseline = best_of(run, 3)
        monkeypatch.setattr(Module, "__call__", instrumented_call)
        instrumented = best_of(run, 3)
        ratio = instrumented / baseline
        ratios.append(ratio)
        if ratio <= budget:
            return
    pytest.fail(
        f"disabled-path overhead exceeded {budget:.2f}x baseline in all "
        f"{attempts} attempts: ratios={[f'{r:.3f}' for r in ratios]}"
    )
