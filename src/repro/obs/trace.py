"""Hierarchical wall-time trace spans with a no-op disabled path.

A span marks one region of the experiment hierarchy::

    with span("attack/pgd"):
        ...
        with span("iter"):
            ...

Span *names* are short taxonomy segments (they may contain ``/`` for
sub-categories, e.g. ``cmd/table3``); the recorder joins the active
stack into a full *path* (``cmd/table3/attack/pgd/iter``) and
aggregates count / total / self wall time per path — the data behind
the flamegraph-style text profile of ``repro obs summarize``.

Disabled cost is one module-global ``None`` check plus a shared no-op
context manager, so instrumentation can stay in hot paths (attack
iterations, layer forwards, bank MVMs) permanently.  The overhead
guard in ``tests/test_obs_overhead.py`` enforces the <5% budget on a
tiny resnet forward.

The recorder keeps one span stack *per thread* (the serving layer runs
several inference lanes, each a dedicated thread, and a shared stack
would interleave their nesting) and guards only the per-path aggregate
update with a lock — the begin/end bookkeeping itself stays lock-free,
so the cheap spans this module is designed to allow stay cheap.
"""

from __future__ import annotations

import threading
import time


class SpanStats:
    """Aggregated wall-time statistics for one span path."""

    __slots__ = ("count", "total", "child")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.child = 0.0  # time attributed to nested spans

    @property
    def self_time(self) -> float:
        """Time spent in the span itself, excluding nested spans."""
        return max(self.total - self.child, 0.0)


class TraceRecorder:
    """Collects span aggregates and (optionally) emits coarse events.

    Parameters
    ----------
    emit:
        Optional callback ``emit(path, duration, depth)`` invoked when a
        span *at or above* ``emit_depth`` closes — the JSONL sink hooks
        in here so the event log carries a coarse timeline without one
        record per layer forward.
    emit_depth:
        Maximum stack depth (1 = outermost) whose spans are emitted.
    """

    def __init__(self, emit=None, emit_depth: int = 3):
        self.stats: dict[str, SpanStats] = {}
        self._local = threading.local()
        self._stats_lock = threading.Lock()
        self._emit = emit
        self.emit_depth = emit_depth

    @property
    def _stack(self) -> list:
        """This thread's span stack of ``[name, start, child_accum]``."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    def begin(self, name: str) -> None:
        self._stack.append([name, time.perf_counter(), 0.0])

    def end(self) -> None:
        stack = self._stack
        if not stack:  # tolerate unbalanced end() calls
            return
        name, start, child = stack.pop()
        duration = time.perf_counter() - start
        if stack:
            parts = [frame[0] for frame in stack]
            parts.append(name)
            path = "/".join(parts)
            stack[-1][2] += duration
        else:
            path = name
        with self._stats_lock:
            stats = self.stats.get(path)
            if stats is None:
                stats = self.stats[path] = SpanStats()
            stats.count += 1
            stats.total += duration
            stats.child += child
        depth = len(stack) + 1
        if self._emit is not None and depth <= self.emit_depth:
            self._emit(path, duration, depth)

    @property
    def depth(self) -> int:
        """Depth of the *calling thread's* span stack."""
        return len(self._stack)

    def profile(self) -> list[dict]:
        """Span aggregates as JSON-ready rows (sorted for stable output)."""
        return [
            {
                "path": path,
                "count": stats.count,
                "total_s": stats.total,
                "self_s": stats.self_time,
            }
            for path, stats in sorted(self.stats.items())
        ]


#: Installed recorder; ``None`` means tracing is disabled (the default).
_RECORDER: TraceRecorder | None = None


def install(recorder: TraceRecorder) -> None:
    global _RECORDER
    _RECORDER = recorder


def uninstall() -> None:
    global _RECORDER
    _RECORDER = None


def enabled() -> bool:
    return _RECORDER is not None


def current() -> TraceRecorder | None:
    return _RECORDER


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one span on the installed recorder."""

    __slots__ = ("name", "_recorder")

    def __init__(self, name: str):
        self.name = name
        self._recorder = None

    def __enter__(self) -> "_Span":
        # Bind the recorder at entry so a recorder swapped mid-span
        # never sees an end() it did not begin().
        self._recorder = _RECORDER
        if self._recorder is not None:
            self._recorder.begin(self.name)
        return self

    def __exit__(self, *exc) -> bool:
        if self._recorder is not None:
            self._recorder.end()
            self._recorder = None
        return False


def span(name: str) -> "_Span | _NullSpan":
    """A context manager tracing ``name`` (no-op when tracing is off)."""
    if _RECORDER is None:
        return _NULL_SPAN
    return _Span(name)
