"""PUMA-style functional simulator: non-ideal Conv2d/Linear layers.

Implements the three-step mapping of §II-A of the paper:

i.   *Iterative MVM* — convolutions become matrix-vector products over
     im2col patch vectors; linear layers are used as-is.
ii.  *Tiling* — each layer's weight matrix is split into crossbar-sized
     segments (:mod:`repro.xbar.tiling`); partial sums accumulate
     digitally.
iii. *Bit-slicing* — weights are quantized and sliced into
     ``slice_bits`` cell-resident chunks, inputs are quantized and
     streamed ``stream_bits`` at a time (:mod:`repro.xbar.bitslice`);
     shift-and-add recombines partial products.

Analog MVMs go through a *column predictor* — normally the GENIEx
surrogate, optionally the exact circuit solver or the fast analytic
noise model — followed by ADC quantization.  Negative weights use the
differential scheme (separate positive/negative arrays, subtracted
digitally).

The non-ideal layers support the paper's "Hardware-in-Loop" gradient
convention: the forward pass is the non-ideal hardware computation,
while backward applies the *ideal* layer Jacobian (the NVM hardware is
inference-only; see §III-C.2).
"""

from __future__ import annotations

import copy
import logging
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.conv import col2im, conv_output_size, im2col
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.xbar.adc import quantize_current
from repro.xbar.bitslice import slice_weights, stream_inputs
from repro.xbar.circuit import CrossbarCircuit
from repro.xbar.device import RRAMDevice
from repro.xbar.faults import FaultModel, FaultSummary, TileHealthError
from repro.xbar.presets import CrossbarConfig, load_or_train_geniex
from repro.xbar.tiling import tile_matrix

logger = logging.getLogger(__name__)


class ColumnPredictor(Protocol):
    """Interface every analog-MVM backend implements.

    ``prepare_crossbar`` digests one programmed array (G is fixed after
    programming) down to the state needed to answer queries for its
    first ``used_cols`` columns; ``concat_bias`` banks several prepared
    arrays; ``predict_from_bias`` evaluates column currents for a batch
    of input voltage vectors against a bank.
    """

    def prepare_crossbar(self, conductances: np.ndarray, used_cols: int | None = None): ...

    def concat_bias(self, handles: list): ...

    def predict_from_bias(self, voltages: np.ndarray, column_bias, chunk: int = 8192) -> np.ndarray: ...


class IdealPredictor:
    """Parasitic-free backend: exact ``V @ G`` column currents.

    With this predictor the functional simulator still applies weight
    and input quantization, bit-slicing and the ADC — so it isolates
    the *quantization-only* accuracy cost from the analog non-ideality
    (used by the ablation benchmarks).
    """

    @staticmethod
    def prepare_crossbar(conductances: np.ndarray, used_cols: int | None = None) -> np.ndarray:
        g = np.asarray(conductances, dtype=np.float64)
        used = g.shape[1] if used_cols is None else used_cols
        return g[:, :used]

    def column_bias(self, conductances: np.ndarray) -> np.ndarray:
        return self.prepare_crossbar(conductances)

    @staticmethod
    def concat_bias(handles: list[np.ndarray]) -> np.ndarray:
        return np.concatenate(handles, axis=1)

    @staticmethod
    def predict_from_bias(voltages: np.ndarray, column_bias: np.ndarray, chunk: int = 8192) -> np.ndarray:
        return np.asarray(voltages) @ column_bias


class CircuitPredictor:
    """Exact-but-slow backend: solves the full circuit per crossbar.

    Used for surrogate validation and small unit tests.  The *full*
    physical array is always solved (unused OFF columns still load the
    wordlines); only the used columns are reported.
    """

    def __init__(self, config: CrossbarConfig):
        self.config = config
        self.solver = CrossbarCircuit(config.circuit, config.device)

    def prepare_crossbar(
        self, conductances: np.ndarray, used_cols: int | None = None
    ) -> list[tuple[np.ndarray, int]]:
        g = np.asarray(conductances, dtype=np.float64)
        used = g.shape[1] if used_cols is None else used_cols
        return [(g, used)]

    # Kept for interface parity with GENIEx.predict.
    def column_bias(self, conductances: np.ndarray):
        return self.prepare_crossbar(conductances)

    @staticmethod
    def concat_bias(handles: list) -> list:
        return [entry for handle in handles for entry in handle]

    def predict_from_bias(
        self, voltages: np.ndarray, column_bias: list, chunk: int = 8192
    ) -> np.ndarray:
        cols = self.config.cols
        outputs = []
        for g, used in column_bias:
            block = g
            if block.shape[1] < cols:  # pad ragged array with OFF cells
                pad = np.full(
                    (block.shape[0], cols - block.shape[1]), self.config.device.g_min
                )
                block = np.concatenate([block, pad], axis=1)
            solved = self.solver.solve(voltages, block)
            outputs.append(solved[:, :used])
        return np.concatenate(outputs, axis=1)


@dataclass
class _BankChunk:
    """One physical crossbar's *used* columns within a bank.

    Crossbar columns beyond a layer's output width hold OFF cells and
    are never sensed, so the predictor only evaluates the used ones.
    """

    col_slice: slice  # output features this crossbar serves
    slice_index: int  # weight slice (LSB first)
    sign: float  # +1.0 positive array, -1.0 negative array
    offset: int  # first bank column
    width: int  # number of used columns


@dataclass
class _TileRowBank:
    """All crossbars fed by one input-row segment, banked for batching."""

    handle: object  # predictor-prepared state for all used columns
    row_slice: slice  # which input features feed this bank
    chunks: list[_BankChunk]
    total_cols: int
    # Fault-free conductances for the same used columns, kept only when
    # the guard's digital fallback is enabled: ``voltages @ ideal_bias``
    # reproduces the exact integer partial products after the dummy-
    # column subtraction, i.e. the ideal digital path for this bank.
    ideal_bias: np.ndarray | None = None


class CrossbarEngine:
    """Non-ideal MVM engine for one layer's weight matrix.

    Programs the (transposed) weight matrix onto tiled, bit-sliced,
    differential crossbar arrays at construction; :meth:`matvec`
    computes ``x @ W.T`` through the analog path.
    """

    def __init__(
        self,
        weight: np.ndarray,
        config: CrossbarConfig,
        predictor: ColumnPredictor,
        rng: np.random.Generator | None = None,
    ):
        if weight.ndim != 2:
            raise ValueError(f"weight must be 2-D (out, in), got {weight.shape}")
        bs = config.bitslice
        dev = config.device
        if dev.levels_bits != bs.slice_bits:
            raise ValueError(
                f"device levels_bits ({dev.levels_bits}) must equal "
                f"bit-slice slice_bits ({bs.slice_bits})"
            )
        self.config = config
        self.predictor = predictor
        self.out_features, self.in_features = weight.shape
        self._rng = rng or np.random.default_rng(0)

        matrix = np.asarray(weight, dtype=np.float64).T  # (in, out)
        w_abs_max = float(np.abs(matrix).max())
        self.w_scale = w_abs_max / (bs.weight_levels - 1) if w_abs_max > 0 else 1.0
        pos_int = np.clip(np.rint(np.maximum(matrix, 0) / self.w_scale), 0, bs.weight_levels - 1)
        neg_int = np.clip(np.rint(np.maximum(-matrix, 0) / self.w_scale), 0, bs.weight_levels - 1)

        device = RRAMDevice(dev)
        tiled_pos = tile_matrix(pos_int.astype(np.int64), config.rows, config.cols)
        tiled_neg = tile_matrix(neg_int.astype(np.int64), config.rows, config.cols)
        col_slices = tiled_pos.col_slices()
        n_row_tiles, n_col_tiles = tiled_pos.grid_shape

        # Fault injection: the model is created only when the config
        # enables any fault class, so the fault-free path draws no
        # randomness and stays bit-identical to a build without the
        # fault layer.  The chip token ties the fault map to this
        # chip's programming RNG (two chips -> two fault realizations).
        self.fault_summary = FaultSummary()
        fault_model: FaultModel | None = None
        if config.faults.enabled:
            chip_token = int(self._rng.integers(0, 2**31 - 1))
            fault_model = FaultModel(config.faults, dev, chip_token)
        keep_ideal = config.guard.mode == "fallback"
        self._guard_trips = 0
        self._guard_warned = False

        tile_index = 0
        self.banks: list[_TileRowBank] = []
        for r, row_slice in enumerate(tiled_pos.row_slices()):
            handles = []
            ideal_handles: list[np.ndarray] = []
            chunks: list[_BankChunk] = []
            offset = 0
            for c in range(n_col_tiles):
                used = col_slices[c].stop - col_slices[c].start
                pos_slices = slice_weights(tiled_pos.tiles[r][c], bs)
                neg_slices = slice_weights(tiled_neg.tiles[r][c], bs)
                for s in range(bs.num_slices):
                    for sign, levels in ((1.0, pos_slices[s]), (-1.0, neg_slices[s])):
                        conductances = device.program(levels, self._rng)
                        if fault_model is not None:
                            conductances, tile_faults = fault_model.inject(
                                conductances, tile_index
                            )
                            self.fault_summary.merge(tile_faults)
                        tile_index += 1
                        handles.append(predictor.prepare_crossbar(conductances, used))
                        if keep_ideal:
                            ideal_handles.append(
                                device.level_to_conductance(levels)[:, :used]
                            )
                        chunks.append(
                            _BankChunk(
                                col_slice=col_slices[c],
                                slice_index=s,
                                sign=sign,
                                offset=offset,
                                width=used,
                            )
                        )
                        offset += used
            self.banks.append(
                _TileRowBank(
                    handle=predictor.concat_bias(handles),
                    row_slice=row_slice,
                    chunks=chunks,
                    total_cols=offset,
                    ideal_bias=(
                        np.concatenate(ideal_handles, axis=1) if keep_ideal else None
                    ),
                )
            )
        self._adc_full_scale = config.rows * dev.g_max * dev.v_read
        # Per-output-column digital gain, calibrated at programming time
        # (the gain trim of each ADC/shift-add channel; see
        # CrossbarConfig.gain_calibration).  Multiplicative only, so the
        # engine stays exactly scale-equivariant in its input.
        self.gain = np.ones(self.out_features)
        if config.gain_calibration > 0:
            self.gain = self._calibrate_gain(weight, config.gain_calibration)

    def _calibrate_gain(self, weight: np.ndarray, num_vectors: int) -> np.ndarray:
        """Per-column least-squares gains aligning analog to ideal.

        Uses random non-negative probe vectors (the statistics of
        post-ReLU activations); for each output column the fit
        minimizes ``||g_j * y_j - y_ideal_j||``.  This removes the
        *systematic* (column-position and weight-pattern dependent)
        part of the IR-drop error; the input-dependent part — the
        source of the paper's gradient obfuscation — remains.
        """
        rng = np.random.default_rng(12345)
        probes = rng.random((num_vectors, self.in_features))
        probes *= rng.random((num_vectors, self.in_features)) < 0.6  # sparsity
        analog = self._matvec_unsigned(probes)
        ideal = probes @ np.asarray(weight, dtype=np.float64).T
        denom = np.sum(analog * analog, axis=0)
        gains = np.divide(
            np.sum(analog * ideal, axis=0),
            denom,
            out=np.ones(self.out_features),
            where=denom > 0,
        )
        # Guard against degenerate fits on nearly-dead columns.
        return np.clip(gains, 0.25, 4.0)

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Non-ideal ``x @ W.T`` for a batch ``x`` of shape (N, in)."""
        return self.gain * self.matvec_raw(x)

    def matvec_raw(self, x: np.ndarray) -> np.ndarray:
        """Analog result before the periphery's digital gain trim."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"input shape {x.shape} incompatible with in_features={self.in_features}"
            )
        if not np.isfinite(x).all():
            bad = int((~np.isfinite(x)).sum())
            raise ValueError(
                f"crossbar input contains {bad} non-finite value(s) (NaN/Inf); "
                "inputs are quantized to integer DAC levels, so non-finite "
                "entries would silently corrupt every output column — "
                "sanitize the batch before calling matvec"
            )
        if (x >= 0).all():
            return self._matvec_unsigned(x)
        positive = self._matvec_unsigned(np.maximum(x, 0.0))
        negative = self._matvec_unsigned(np.maximum(-x, 0.0))
        return positive - negative

    def refit_gain(self, vectors: np.ndarray, weight: np.ndarray) -> None:
        """Recalibrate per-column gains against real activation vectors.

        Called by :func:`calibrate_hardware` with the actual inputs each
        layer sees on a calibration set — the probe-based gains from
        construction are only a coarse starting point, since uniform
        probes poorly match post-ReLU activation statistics.
        """
        analog = self.matvec_raw(vectors)
        ideal = np.asarray(vectors, dtype=np.float64) @ np.asarray(weight, dtype=np.float64).T
        denom = np.sum(analog * analog, axis=0)
        gains = np.divide(
            np.sum(analog * ideal, axis=0),
            denom,
            out=np.ones(self.out_features),
            where=denom > 0,
        )
        self.gain = np.clip(gains, 0.25, 4.0)

    def begin_gain_accumulation(self) -> None:
        """Reset the streaming gain-fit statistics.

        The per-column least-squares gain is a ratio of two sums over
        calibration vectors, so it can be accumulated batch by batch
        without holding all vectors in memory — this is how
        :func:`calibrate_hardware` covers an arbitrarily large
        calibration set in one sweep.
        """
        self._gain_sum_aa = np.zeros(self.out_features)
        self._gain_sum_ai = np.zeros(self.out_features)
        self._gain_rows = 0

    def accumulate_gain(self, vectors: np.ndarray, weight: np.ndarray) -> None:
        """Fold one batch of calibration vectors into the gain fit."""
        if not hasattr(self, "_gain_rows"):
            self.begin_gain_accumulation()
        analog = self.matvec_raw(vectors)
        ideal = np.asarray(vectors, dtype=np.float64) @ np.asarray(weight, dtype=np.float64).T
        self._gain_sum_aa += np.sum(analog * analog, axis=0)
        self._gain_sum_ai += np.sum(analog * ideal, axis=0)
        self._gain_rows += len(vectors)

    def finish_gain_accumulation(self) -> None:
        """Set gains from the accumulated statistics (no-op if empty)."""
        if getattr(self, "_gain_rows", 0) > 0:
            gains = np.divide(
                self._gain_sum_ai,
                self._gain_sum_aa,
                out=np.ones(self.out_features),
                where=self._gain_sum_aa > 0,
            )
            self.gain = np.clip(gains, 0.25, 4.0)
        for attr in ("_gain_sum_aa", "_gain_sum_ai", "_gain_rows"):
            if hasattr(self, attr):
                delattr(self, attr)

    def _matvec_unsigned(self, x: np.ndarray) -> np.ndarray:
        bs = self.config.bitslice
        dev = self.config.device
        n = x.shape[0]
        out = np.zeros((n, self.out_features), dtype=np.float64)

        x_max = float(x.max())
        if x_max == 0.0:
            return out
        x_lsb = x_max / (bs.input_levels - 1)
        x_int = np.clip(np.rint(x / x_lsb), 0, bs.input_levels - 1).astype(np.int64)
        streams = stream_inputs(x_int, bs)
        v_step = dev.v_read / (bs.stream_levels - 1)

        rows = self.config.rows
        for bank in self.banks:
            width = bank.row_slice.stop - bank.row_slice.start
            for t, stream in enumerate(streams):
                seg = stream[:, bank.row_slice]
                if not seg.any():
                    continue  # all-zero stream contributes nothing
                voltages = np.zeros((n, rows))
                voltages[:, :width] = seg * v_step
                currents = self.predictor.predict_from_bias(voltages, bank.handle)
                fallback_cols = self._check_tile_health(currents, bank)
                currents = quantize_current(currents, self.config.adc, self._adc_full_scale)
                if fallback_cols is not None:
                    # Graceful degradation: recompute the sick tiles'
                    # columns through the ideal digital path (exact
                    # partial products, no ADC) instead of letting
                    # NaN/Inf poison the whole forward pass.
                    currents[:, fallback_cols] = (
                        voltages @ bank.ideal_bias[:, fallback_cols]
                    )
                # Remove the G_min offset (dummy-column subtraction) and
                # rescale currents back to integer dot products.
                v_sum = voltages.sum(axis=1, keepdims=True)
                dots = (currents - dev.g_min * v_sum) / (dev.g_step * v_step)
                stream_scale = float(2.0 ** (bs.stream_bits * t))
                for chunk in bank.chunks:
                    significance = float(2.0 ** (bs.slice_bits * chunk.slice_index))
                    out[:, chunk.col_slice] += (chunk.sign * significance * stream_scale) * dots[
                        :, chunk.offset : chunk.offset + chunk.width
                    ]
        return out * (x_lsb * self.w_scale)

    # ------------------------------------------------------------------
    # Graceful degradation (see repro.xbar.faults.GuardConfig)
    # ------------------------------------------------------------------
    @property
    def guard_trips(self) -> int:
        """How many bank evaluations the health guard has intercepted."""
        return self._guard_trips

    def _check_tile_health(
        self, currents: np.ndarray, bank: _TileRowBank
    ) -> np.ndarray | None:
        """Detect non-finite / saturated analog outputs for one bank.

        Returns a boolean column mask (expanded to whole-tile extents)
        to fall back to the digital path, or ``None`` when nothing needs
        replacing.  Modes: ``off`` skips detection, ``warn`` only logs,
        ``raise`` aborts the forward pass, ``fallback`` (default)
        substitutes the ideal partial products.
        """
        guard = self.config.guard
        if not guard.active:
            return None
        sick = ~np.isfinite(currents)
        if guard.saturation_factor is not None:
            limit = guard.saturation_factor * self._adc_full_scale
            sick |= np.abs(currents) > limit
        if not sick.any():
            return None
        self._guard_trips += 1
        sick_cols = sick.any(axis=0)
        detail = (
            f"{int(sick.sum())} sick current(s) across {int(sick_cols.sum())} "
            f"column(s) of a {self.out_features}-output engine "
            f"(mode={guard.mode})"
        )
        if guard.mode == "raise":
            raise TileHealthError(f"crossbar tile output unhealthy: {detail}")
        if not self._guard_warned:
            action = (
                "falling back to the digital path"
                if guard.mode == "fallback"
                else "keeping analog values"
            )
            logger.warning("crossbar tile output unhealthy: %s; %s", detail, action)
            self._guard_warned = True
        else:
            logger.debug("crossbar tile health guard tripped again: %s", detail)
        if guard.mode != "fallback":
            return None
        # Widen to whole tiles: the periphery swaps a tile's ADC lane
        # for the digital partial sum, not single columns.
        fallback = np.zeros_like(sick_cols)
        for chunk in bank.chunks:
            span = slice(chunk.offset, chunk.offset + chunk.width)
            if sick_cols[span].any():
                fallback[span] = True
        return fallback

    def ideal_matvec(self, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Reference ideal computation (digital float)."""
        return np.asarray(x) @ np.asarray(weight).T


def build_engine(
    weight: np.ndarray,
    config: CrossbarConfig,
    predictor: ColumnPredictor | None = None,
    rng: np.random.Generator | None = None,
) -> CrossbarEngine:
    """Convenience constructor defaulting to the cached GENIEx backend."""
    predictor = predictor or load_or_train_geniex(config)
    return CrossbarEngine(weight, config, predictor, rng)


class NonIdealLinear(Module):
    """Linear layer executed on the non-ideal crossbar hardware.

    Forward uses the analog path; backward applies the ideal Jacobian
    (``grad @ W``) — the hardware-in-loop convention.
    """

    def __init__(self, source: Linear, config: CrossbarConfig, predictor: ColumnPredictor, rng=None):
        super().__init__()
        self.in_features = source.in_features
        self.out_features = source.out_features
        self.weight_float = source.weight.data.copy()
        self.bias_float = source.bias.data.copy() if source.bias is not None else None
        self.engine = CrossbarEngine(self.weight_float, config, predictor, rng)
        self._pending_calibration = False
        self._max_calibration_vectors = 2048

    def forward(self, x: Tensor) -> Tensor:
        if self._pending_calibration:
            vectors = _subsample_rows(x.data, self._max_calibration_vectors)
            self.engine.accumulate_gain(vectors, self.weight_float)
        out = self.engine.matvec(x.data).astype(np.float32)
        if self.bias_float is not None:
            out = out + self.bias_float

        weight = self.weight_float

        def backward(grad: np.ndarray) -> None:
            if x.requires_grad:
                x._accumulate(grad @ weight)

        return Tensor._make(out, (x,), backward)

    def __repr__(self) -> str:
        return (
            f"NonIdealLinear({self.in_features}, {self.out_features}, "
            f"xbar={self.engine.config.name})"
        )


class NonIdealConv2d(Module):
    """Conv2d executed on the non-ideal crossbar hardware via im2col."""

    def __init__(self, source: Conv2d, config: CrossbarConfig, predictor: ColumnPredictor, rng=None):
        super().__init__()
        self.in_channels = source.in_channels
        self.out_channels = source.out_channels
        self.kernel_size = source.kernel_size
        self.stride = source.stride
        self.padding = source.padding
        self.weight_float = source.weight.data.copy()
        self.bias_float = source.bias.data.copy() if source.bias is not None else None
        w_mat = self.weight_float.reshape(self.out_channels, -1)
        self.engine = CrossbarEngine(w_mat, config, predictor, rng)
        self._pending_calibration = False
        self._max_calibration_vectors = 2048

    def forward(self, x: Tensor) -> Tensor:
        n = x.shape[0]
        k = self.kernel_size
        self.last_input_hw = (x.shape[2], x.shape[3])  # for energy accounting
        h_out = conv_output_size(x.shape[2], k, self.stride, self.padding)
        w_out = conv_output_size(x.shape[3], k, self.stride, self.padding)
        cols = im2col(x.data, (k, k), self.stride, self.padding)  # (N, CKK, L)
        vectors = cols.transpose(0, 2, 1).reshape(n * h_out * w_out, -1)
        if self._pending_calibration:
            sample = _subsample_rows(vectors, self._max_calibration_vectors)
            self.engine.accumulate_gain(sample, self.weight_float.reshape(self.out_channels, -1))
        flat = self.engine.matvec(vectors)  # (N*L, out)
        out = (
            flat.reshape(n, h_out * w_out, self.out_channels)
            .transpose(0, 2, 1)
            .reshape(n, self.out_channels, h_out, w_out)
            .astype(np.float32)
        )
        if self.bias_float is not None:
            out = out + self.bias_float.reshape(1, -1, 1, 1)

        w_mat = self.weight_float.reshape(self.out_channels, -1)
        input_shape = x.shape

        def backward(grad: np.ndarray) -> None:
            if not x.requires_grad:
                return
            grad_mat = grad.reshape(n, self.out_channels, h_out * w_out)
            gcols = np.einsum("ok,nol->nkl", w_mat, grad_mat, optimize=True)
            x._accumulate(col2im(gcols, input_shape, (k, k), self.stride, self.padding))

        return Tensor._make(out, (x,), backward)

    def __repr__(self) -> str:
        return (
            f"NonIdealConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, xbar={self.engine.config.name})"
        )


def _subsample_rows(vectors: np.ndarray, max_rows: int) -> np.ndarray:
    """Evenly subsample rows for calibration fits."""
    if len(vectors) <= max_rows:
        return vectors
    idx = np.linspace(0, len(vectors) - 1, max_rows).astype(np.int64)
    return vectors[idx]


def calibrate_hardware(model: Module, images: np.ndarray, batch_size: int = 64) -> Module:
    """Recalibrate every non-ideal layer's gains on real data.

    Sweeps **all** of ``images`` in batches of ``batch_size``; each
    NonIdeal layer accumulates streaming least-squares statistics of
    (analog, ideal) output pairs for the activations it actually
    receives, and the per-column digital gains are fit once at the end
    of the sweep.  Mirrors standard analog-accelerator bring-up with a
    calibration set — and unlike a single-batch refit, the calibration
    coverage is exactly the set you pass in.
    """
    from repro.autograd.tensor import no_grad

    layers = [
        module
        for _name, module in model.named_modules()
        if isinstance(module, (NonIdealConv2d, NonIdealLinear))
    ]
    images = np.asarray(images, dtype=np.float32)
    for layer in layers:
        layer.engine.begin_gain_accumulation()
        layer._pending_calibration = True
    try:
        with no_grad():
            for start in range(0, len(images), batch_size):
                model(Tensor(images[start : start + batch_size]))
    finally:
        for layer in layers:
            layer._pending_calibration = False
            layer.engine.finish_gain_accumulation()
    return model


def fault_summary(model: Module) -> "FaultSummary":
    """Aggregate injected-fault counts over every non-ideal layer."""
    total = FaultSummary()
    for _name, module in model.named_modules():
        if isinstance(module, (NonIdealConv2d, NonIdealLinear)):
            total.merge(module.engine.fault_summary)
    return total


def guard_trips(model: Module) -> int:
    """Total health-guard interceptions across every non-ideal layer."""
    return sum(
        module.engine.guard_trips
        for _name, module in model.named_modules()
        if isinstance(module, (NonIdealConv2d, NonIdealLinear))
    )


def convert_to_hardware(
    model: Module,
    config: CrossbarConfig,
    predictor: ColumnPredictor | None = None,
    rng: np.random.Generator | None = None,
    skip: tuple[str, ...] = (),
    calibration_images: np.ndarray | None = None,
) -> Module:
    """Return a copy of ``model`` with Conv2d/Linear on NVM hardware.

    Parameters
    ----------
    model:
        Trained digital model (left untouched).
    config:
        Crossbar hardware variant (one of the Table-I presets).
    predictor:
        Analog backend; defaults to the cached GENIEx surrogate for
        ``config``.
    rng:
        Programming randomness (only used when the device has write
        variation).
    skip:
        Dotted module paths to keep digital (the paper maps all layers
        to crossbars; ablations may pin e.g. the classifier head).
    """
    predictor = predictor or load_or_train_geniex(config)
    # One shared generator across layers so programming noise and fault
    # maps decorrelate layer-to-layer even when no rng is supplied.
    rng = rng or np.random.default_rng(0)
    hardware = copy.deepcopy(model)
    replacements: list[tuple[str, Module]] = []
    for name, module in hardware.named_modules():
        if not name or name in skip:
            continue
        if isinstance(module, Conv2d):
            replacements.append((name, NonIdealConv2d(module, config, predictor, rng)))
        elif isinstance(module, Linear):
            replacements.append((name, NonIdealLinear(module, config, predictor, rng)))
    for name, replacement in replacements:
        hardware.set_submodule(name, replacement)
    hardware.eval()
    if calibration_images is not None:
        calibrate_hardware(hardware, calibration_images)
    return hardware
