"""Continuous micro-batching: a deadline-bounded coalescing queue.

The MVM hot path is substantially faster batched (one predictor call
per tile-row bank covers the whole batch axis) and the parallel
backend shards the batch axis across workers — but serving traffic
arrives one image at a time.  :class:`MicroBatcher` closes that gap:
requests enqueue as they arrive, and a consumer pulls *micro-batches*
that are cut when either ``max_batch`` requests for one model have
coalesced or the oldest waiting request has aged past ``max_wait_us``.

The batcher is model-aware (a micro-batch never mixes tenants) and
globally FIFO: the next batch is always cut for the model whose head
request has waited longest.  Admission control is a hard bound on the
total queued requests — :meth:`push` raises instead of growing the
queue, so overload turns into typed rejections upstream rather than
unbounded latency.

Pure asyncio, single consumer, no threads: all state is touched from
the event loop only.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field


@dataclass
class QueueEntry:
    """One queued request: opaque payload plus arrival bookkeeping."""

    seq: int
    enqueued: float  # loop.time() at arrival
    payload: object


@dataclass
class MicroBatch:
    """One coalesced batch for a single model, in arrival order."""

    model: str
    entries: list[QueueEntry]
    cut_at: float  # loop.time() when the batch was cut

    @property
    def size(self) -> int:
        return len(self.entries)

    @property
    def payloads(self) -> list:
        return [entry.payload for entry in self.entries]

    def wait_us(self, entry: QueueEntry) -> float:
        """How long one entry sat in the queue before the cut."""
        return (self.cut_at - entry.enqueued) * 1e6


@dataclass
class BatcherStats:
    """Monotonic counters of everything the batcher has done."""

    pushed: int = 0
    rejected: int = 0
    batches: int = 0
    served: int = 0
    by_model: dict = field(default_factory=dict)

    @property
    def batching_efficiency(self) -> float:
        """Requests served per model invocation (> 1 = coalescing won)."""
        return self.served / self.batches if self.batches else 0.0


class QueueFull(Exception):
    """Raised by :meth:`MicroBatcher.push` when admission is denied."""

    def __init__(self, limit: int):
        super().__init__(f"serve queue full ({limit} requests in flight)")
        self.limit = limit


class MicroBatcher:
    """Bounded, model-aware, deadline-bounded request coalescer."""

    def __init__(
        self, max_batch: int = 8, max_wait_us: float = 2000.0, queue_limit: int = 64
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {max_wait_us}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.max_batch = max_batch
        self.max_wait_us = max_wait_us
        self.queue_limit = queue_limit
        self.stats = BatcherStats()
        self._queues: dict[str, deque[QueueEntry]] = {}
        self._queued = 0
        self._seq = 0
        self._closed = False
        self._wake = asyncio.Event()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._queued

    def queue_depth(self, model: str) -> int:
        """Requests currently queued for one model (telemetry read)."""
        queue = self._queues.get(model)
        return len(queue) if queue is not None else 0

    @property
    def closed(self) -> bool:
        return self._closed

    def push(self, model: str, payload: object) -> QueueEntry:
        """Enqueue one request; raises :class:`QueueFull` when bounded out."""
        if self._queued >= self.queue_limit:
            self.stats.rejected += 1
            raise QueueFull(self.queue_limit)
        loop = asyncio.get_running_loop()
        entry = QueueEntry(seq=self._seq, enqueued=loop.time(), payload=payload)
        self._seq += 1
        self._queues.setdefault(model, deque()).append(entry)
        self._queued += 1
        self.stats.pushed += 1
        self._wake.set()
        return entry

    def close(self) -> None:
        """Stop accepting deadline waits; :meth:`next_batch` drains then ends."""
        self._closed = True
        self._wake.set()

    def drain(self) -> list[tuple[str, QueueEntry]]:
        """Remove and return everything still queued (shutdown path)."""
        drained: list[tuple[str, QueueEntry]] = []
        for model, queue in self._queues.items():
            while queue:
                drained.append((model, queue.popleft()))
        self._queued = 0
        drained.sort(key=lambda pair: pair[1].seq)
        return drained

    # ------------------------------------------------------------------
    def _oldest_model(self) -> str:
        """The model whose head-of-queue request has waited longest."""
        return min(
            (model for model, queue in self._queues.items() if queue),
            key=lambda model: self._queues[model][0].seq,
        )

    async def next_batch(self) -> MicroBatch | None:
        """Cut and return the next micro-batch; ``None`` once closed + drained.

        Cuts when the selected model has ``max_batch`` requests queued,
        or its oldest request has waited ``max_wait_us``, or the batcher
        is closed (flush immediately, no deadline lingering).
        """
        loop = asyncio.get_running_loop()
        while True:
            if self._queued == 0:
                if self._closed:
                    return None
                self._wake.clear()
                if self._queued == 0 and not self._closed:
                    await self._wake.wait()
                continue
            model = self._oldest_model()
            queue = self._queues[model]
            deadline = queue[0].enqueued + self.max_wait_us / 1e6
            while len(queue) < self.max_batch and not self._closed:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=remaining)
                except (asyncio.TimeoutError, TimeoutError):
                    break
            take = min(self.max_batch, len(queue))
            entries = [queue.popleft() for _ in range(take)]
            self._queued -= take
            self.stats.batches += 1
            self.stats.served += take
            per_model = self.stats.by_model.setdefault(
                model, {"batches": 0, "served": 0}
            )
            per_model["batches"] += 1
            per_model["served"] += take
            return MicroBatch(model=model, entries=entries, cut_at=loop.time())
