"""Temporal drift model + engine integration: determinism, monotonicity,
reprogram semantics, snapshot/disk-cache freshness."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import make_tiny_crossbar_config
from repro.xbar.device import DeviceConfig
from repro.xbar.drift import DriftConfig, DriftModel, with_drift
from repro.xbar.engine_cache import EngineCache, engine_key
from repro.xbar.simulator import (
    CrossbarEngine,
    IdealPredictor,
    restore_engine,
    snapshot_engine,
)


def drift_config(**overrides) -> DriftConfig:
    base = dict(
        epoch_pulses=8,
        retention_nu=0.1,
        retention_sigma=0.3,
        read_disturb_rate=1e-3,
        stuck_rate=0.0,
        seed=7,
    )
    base.update(overrides)
    return DriftConfig(**base)


def build_engine(config, seed=3, out_features=6, in_features=10):
    weight = np.random.default_rng(1).normal(size=(out_features, in_features))
    return CrossbarEngine(
        weight, config, IdealPredictor(), np.random.default_rng(seed)
    )


@pytest.fixture
def x():
    return np.abs(np.random.default_rng(2).normal(size=(4, 10)))


# ----------------------------------------------------------------------
# DriftConfig contract
# ----------------------------------------------------------------------


def test_config_validation():
    with pytest.raises(ValueError):
        DriftConfig(epoch_pulses=-1)
    with pytest.raises(ValueError):
        DriftConfig(retention_nu=-0.1)
    with pytest.raises(ValueError):
        DriftConfig(retention_t0=0.0)
    with pytest.raises(ValueError):
        DriftConfig(stuck_rate=1.5)


def test_config_enabled_requires_epoch_and_mechanism():
    assert not DriftConfig().enabled
    assert not DriftConfig(epoch_pulses=8).enabled  # no mechanism
    assert not DriftConfig(retention_nu=0.1).enabled  # no clock
    assert DriftConfig(epoch_pulses=8, retention_nu=0.1).enabled


def test_with_drift_renames_and_changes_cache_key(x):
    config = make_tiny_crossbar_config()
    drifted = with_drift(config, drift_config())
    assert drifted.name != config.name
    weight = np.random.default_rng(1).normal(size=(6, 10))
    assert engine_key(weight, config, IdealPredictor(), None) != engine_key(
        weight, drifted, IdealPredictor(), None
    )


# ----------------------------------------------------------------------
# DriftModel properties (hypothesis)
# ----------------------------------------------------------------------

DEVICE = DeviceConfig(
    r_on=100e3, on_off_ratio=50.0, levels_bits=2, program_sigma=0.0,
    iv_beta=0.25, v_read=0.25,
)


@given(
    seed=st.integers(0, 2**16),
    token=st.integers(0, 2**16),
    tile=st.integers(0, 8),
    age=st.integers(0, 50),
    absolute=st.integers(0, 50),
)
@settings(max_examples=40, deadline=None)
def test_drift_tile_deterministic(seed, token, tile, age, absolute):
    """Same (seed, token, tile, epochs) -> bitwise identical tile."""
    cfg = drift_config(seed=seed, stuck_rate=0.02)
    g0 = np.random.default_rng(0).uniform(
        DEVICE.g_min, DEVICE.g_max, size=(8, 8)
    )
    a = DriftModel(cfg, DEVICE, token).drift_tile(g0, tile, age, absolute)
    b = DriftModel(cfg, DEVICE, token).drift_tile(g0, tile, age, absolute)
    np.testing.assert_array_equal(a, b)


@given(seed=st.integers(0, 2**16), age=st.integers(1, 60))
@settings(max_examples=40, deadline=None)
def test_drift_tile_monotone_decay(seed, age):
    """Elementwise non-increasing in age; t=0 is the exact identity."""
    model = DriftModel(drift_config(seed=seed), DEVICE, 5)
    g0 = np.random.default_rng(seed).uniform(
        DEVICE.g_min, DEVICE.g_max, size=(8, 8)
    )
    np.testing.assert_array_equal(model.drift_tile(g0, 0, 0, 0), g0)
    younger = model.drift_tile(g0, 0, age - 1, 0)
    older = model.drift_tile(g0, 0, age, 0)
    assert (older <= younger).all()
    assert (older >= DEVICE.g_min).all()


@given(seed=st.integers(0, 2**16), epoch=st.integers(0, 40))
@settings(max_examples=40, deadline=None)
def test_dead_mask_monotone(seed, epoch):
    """The stuck-conversion dead set only ever grows — no resurrection."""
    model = DriftModel(drift_config(seed=seed, stuck_rate=0.05), DEVICE, 5)
    now = model.dead_mask((8, 8), 0, epoch)
    later = model.dead_mask((8, 8), 0, epoch + 1)
    assert (later | now == later).all(), "a dead cell came back to life"


def test_dead_cells_survive_reprogram_ages():
    """Reprogramming resets retention age but never the death lottery."""
    model = DriftModel(drift_config(stuck_rate=0.1), DEVICE, 5)
    g0 = np.full((8, 8), DEVICE.g_max)
    aged = model.drift_tile(g0, 0, age_epochs=0, absolute_epoch=10)
    dead = model.dead_mask((8, 8), 0, 10)
    assert dead.any()
    np.testing.assert_array_equal(aged[dead], DEVICE.g_min)
    np.testing.assert_array_equal(aged[~dead], g0[~dead])


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------


def test_zero_drift_engine_is_bitwise_static(x):
    config = make_tiny_crossbar_config()
    static = build_engine(config)
    drifting = build_engine(with_drift(config, drift_config()))
    np.testing.assert_array_equal(static.matvec(x), drifting.matvec(x))
    # Below one epoch a sync is a no-op and outputs stay identical.
    assert not drifting.sync_drift() or drifting.applied_drift_epoch > 0
    np.testing.assert_array_equal(static.matvec(x), drifting.matvec(x))


def test_pulse_counter_and_epoch_advance(x):
    engine = build_engine(with_drift(make_tiny_crossbar_config(), drift_config()))
    assert engine.pulse_count == 0
    engine.matvec(x)
    assert engine.pulse_count == x.shape[0]
    for _ in range(5):
        engine.matvec(x)
    assert engine.drift_epoch == engine.pulse_count // 8
    assert engine.applied_drift_epoch == 0  # nothing applied until sync
    assert engine.sync_drift()
    assert engine.applied_drift_epoch == engine.drift_epoch


def test_drift_changes_outputs_deterministically(x):
    config = with_drift(make_tiny_crossbar_config(), drift_config())

    def serve(blocks):
        engine = build_engine(config)
        fresh = engine.matvec(x)
        for _ in range(blocks):
            engine.matvec(x)
        engine.sync_drift()
        return fresh, engine.matvec(x)

    fresh_a, aged_a = serve(10)
    fresh_b, aged_b = serve(10)
    assert not np.array_equal(fresh_a, aged_a)
    np.testing.assert_array_equal(fresh_a, fresh_b)
    np.testing.assert_array_equal(aged_a, aged_b)


def test_reprogram_restores_fresh_bitwise(x):
    engine = build_engine(with_drift(make_tiny_crossbar_config(), drift_config()))
    fresh = engine.matvec(x)
    for _ in range(20):
        engine.matvec(x)
    engine.sync_drift()
    assert engine.applied_drift_epoch > 0
    assert engine.reprogram() == 0  # stuck_rate=0: no dead survivors
    np.testing.assert_array_equal(fresh, engine.matvec(x))
    # Age restarts from the reprogram point, not from zero pulses.
    assert engine.pulse_count > 0
    assert engine.drift_age_epochs == 0


def test_clone_pristine_resets_time(x):
    engine = build_engine(with_drift(make_tiny_crossbar_config(), drift_config()))
    fresh = engine.matvec(x)
    for _ in range(20):
        engine.matvec(x)
    engine.sync_drift()
    clone = engine.clone_pristine()
    assert clone.pulse_count == 0
    assert clone.applied_drift_epoch == 0
    np.testing.assert_array_equal(fresh, clone.matvec(x))
    # The donor keeps its drifted banks.
    assert engine.applied_drift_epoch > 0


def test_drift_state_round_trip(x):
    config = with_drift(make_tiny_crossbar_config(), drift_config())
    a = build_engine(config)
    for _ in range(13):
        a.matvec(x)
    a.sync_drift()
    state = a.drift_state()
    b = build_engine(config)
    b.restore_drift_state(state)
    b.sync_drift()
    assert b.drift_state() == a.drift_state()
    np.testing.assert_array_equal(a.matvec(x), b.matvec(x))


def test_snapshot_restore_preserves_drift_machinery(x):
    config = with_drift(make_tiny_crossbar_config(), drift_config())
    engine = build_engine(config)
    fresh = engine.matvec(x)
    arrays, meta = snapshot_engine(engine)
    assert meta["drift"] is not None
    restored = restore_engine(meta, arrays, config, IdealPredictor())
    np.testing.assert_array_equal(fresh, restored.matvec(x))
    # The restored chip ages exactly like the original.
    for eng in (engine, restored):
        for _ in range(20):
            eng.matvec(x)
        eng.sync_drift()
    np.testing.assert_array_equal(engine.matvec(x), restored.matvec(x))


# ----------------------------------------------------------------------
# Engine-cache freshness (disk tier)
# ----------------------------------------------------------------------


def test_disk_tier_round_trips_fresh_drifting_engine(tmp_path, x):
    config = with_drift(make_tiny_crossbar_config(), drift_config())
    weight = np.random.default_rng(1).normal(size=(6, 10))
    predictor = IdealPredictor()
    writer = EngineCache(disk=tmp_path)
    built = writer.get_or_build(
        weight, config, predictor, None,
        lambda: CrossbarEngine(weight, config, predictor),
    )
    assert writer.stats.disk_stores == 1
    reader = EngineCache(disk=tmp_path)
    restored = reader.get_or_build(
        weight, config, predictor, None,
        lambda: pytest.fail("expected a disk hit for the fresh snapshot"),
    )
    assert reader.stats.disk_hits == 1
    np.testing.assert_array_equal(built.matvec(x), restored.matvec(x))


def test_disk_tier_refuses_drifted_snapshot(tmp_path, x):
    """Epoch-mismatch regression: an aged engine never loads as fresh."""
    config = with_drift(make_tiny_crossbar_config(), drift_config())
    weight = np.random.default_rng(1).normal(size=(6, 10))
    predictor = IdealPredictor()
    cache = EngineCache(disk=tmp_path)
    engine = CrossbarEngine(weight, config, predictor)
    fresh = engine.matvec(x)
    for _ in range(20):
        engine.matvec(x)
    engine.sync_drift()
    assert engine.applied_drift_epoch > 0
    # Force-store the aged engine under its build key (simulating a
    # spill taken at the wrong point of the chip's life).
    key = engine_key(weight, config, predictor, None)
    cache._store_to_disk(tmp_path, key, engine, None)
    assert cache.stats.disk_stores == 1

    reader = EngineCache(disk=tmp_path)
    rebuilt = reader.get_or_build(
        weight, config, predictor, None,
        lambda: CrossbarEngine(weight, config, predictor),
    )
    # The stale snapshot is a miss (fail-open): dropped and rebuilt.
    assert reader.stats.disk_hits == 0
    assert reader.stats.misses == 1
    assert reader.stats.disk_errors == 1
    assert rebuilt.applied_drift_epoch == 0
    np.testing.assert_array_equal(fresh, rebuilt.matvec(x))


def test_disk_cache_entries_reports_age_and_epoch(tmp_path):
    from repro.xbar.engine_cache import disk_cache_entries

    config = make_tiny_crossbar_config()
    weight = np.random.default_rng(1).normal(size=(6, 10))
    cache = EngineCache(disk=tmp_path)
    cache.get_or_build(
        weight, config, IdealPredictor(), None,
        lambda: CrossbarEngine(weight, config, IdealPredictor()),
    )
    entries = disk_cache_entries(tmp_path)
    assert len(entries) == 1
    entry = entries[0]
    assert entry["epoch"] == 0 and entry["pulses"] == 0
    assert entry["bytes"] > 0
    assert entry["age_seconds"] is not None and entry["age_seconds"] >= 0


def test_cli_cache_stats_lists_entries(tmp_path, monkeypatch, capsys):
    from repro.cli import main
    from repro.xbar.engine_cache import DISK_CACHE_ENV

    monkeypatch.setenv(DISK_CACHE_ENV, str(tmp_path))
    config = make_tiny_crossbar_config()
    weight = np.random.default_rng(1).normal(size=(6, 10))
    cache = EngineCache(disk=True)
    cache.get_or_build(
        weight, config, IdealPredictor(), None,
        lambda: CrossbarEngine(weight, config, IdealPredictor()),
    )
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    # The entry table (repro.obs.summary.render_table) shows an epoch-0,
    # zero-pulse snapshot: header row plus the entry's columns.
    assert "epoch" in out and "pulses" in out and "age" in out
    lines = [line for line in out.splitlines() if " MB " in line]
    assert len(lines) == 1
    assert lines[0].split()[-3:-1] == ["0", "0"]  # epoch 0, pulses 0
