"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. Analog backend fidelity: GENIEx surrogate vs analytic noise model vs
   parasitic-free (quantization-only) backend, against the exact
   circuit solver as reference.
2. Gain calibration: per-column data-driven calibration on vs off.
3. ADC resolution sweep: how much of the error budget the ADC takes.

These quantify *why* the simulator is built the way it is; none map to
a paper table, so scales are kept small.
"""

import dataclasses

import numpy as np
import pytest

from repro.xbar.adc import ADCConfig
from repro.xbar.noise import calibrated_noise_model
from repro.xbar.presets import crossbar_preset, load_or_train_geniex
from repro.xbar.simulator import CircuitPredictor, CrossbarEngine, IdealPredictor


@pytest.fixture(scope="module")
def setting():
    preset = crossbar_preset("32x32_100k")
    rng = np.random.default_rng(7)
    weight = rng.normal(0, 0.3, size=(16, 27)).astype(np.float32)
    probes = (rng.random((48, 27)) * (rng.random((48, 27)) < 0.6)).astype(np.float32)
    test = (rng.random((64, 27)) * (rng.random((64, 27)) < 0.6)).astype(np.float32)
    return preset, weight, probes, test


def bench_ablation_backends(benchmark, setting):
    """Backend fidelity at the crossbar-current level.

    Compared against the exact circuit solver on holdout workloads —
    the level at which GENIEx is defined.  (Downstream of the
    bit-sliced engine, per-column calibration equalizes the backends,
    so the engine is not the discriminating measurement.)
    """
    preset, _weight, _probes, _test = setting

    def run():
        from repro.xbar.circuit import CrossbarCircuit
        from repro.xbar.nf import sample_crossbar_workload

        solver = CrossbarCircuit(preset.circuit, preset.device)
        geniex = load_or_train_geniex(preset)
        noise = calibrated_noise_model(
            preset.circuit, preset.device, num_matrices=6, vectors_per_matrix=6
        )
        workload = sample_crossbar_workload(
            preset.device, preset.rows, preset.cols, np.random.default_rng(321), 3, 6
        )
        errors = {"geniex": [], "noise_model": [], "ideal": []}
        for voltages, conductances in workload:
            true = solver.solve(voltages, conductances)
            ideal = solver.ideal_currents(voltages, conductances)
            mask = ideal > 0.02 * ideal.max()
            predictions = {
                "geniex": geniex.predict(voltages, conductances),
                "noise_model": noise.predict(voltages, conductances),
                "ideal": ideal,
            }
            for name, predicted in predictions.items():
                errors[name].append(np.abs(predicted - true)[mask] / ideal[mask])
        return {name: float(np.concatenate(v).mean()) for name, v in errors.items()}

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: analog backend (current-level error vs exact circuit) ===")
    for name, err in errors.items():
        print(f"  {name:<12} mean relative error {err:.4f}")
    # GENIEx must model the circuit better than the analytic noise
    # model, which in turn beats ignoring parasitics entirely.
    assert errors["geniex"] < errors["noise_model"] < errors["ideal"]


def bench_ablation_gain_calibration(benchmark, setting):
    """Data-driven per-column gain calibration: on vs off."""
    preset, weight, probes, test = setting
    geniex = load_or_train_geniex(preset)
    ideal = test @ weight.T
    scale = np.abs(ideal).mean()

    def run():
        raw_engine = CrossbarEngine(
            weight, dataclasses.replace(preset, gain_calibration=0), geniex
        )
        raw = float(np.abs(raw_engine.matvec(test) - ideal).mean() / scale)
        cal_engine = CrossbarEngine(weight, preset, geniex)
        cal_engine.refit_gain(probes, weight)
        calibrated = float(np.abs(cal_engine.matvec(test) - ideal).mean() / scale)
        return raw, calibrated

    raw, calibrated = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: per-column gain calibration ===")
    print(f"  uncalibrated rel error {raw:.4f}; calibrated {calibrated:.4f}")
    assert calibrated < raw


def bench_ablation_adc_bits(benchmark, setting):
    """ADC resolution sweep: error vs bits."""
    preset, weight, probes, test = setting
    geniex = load_or_train_geniex(preset)
    ideal = test @ weight.T
    scale = np.abs(ideal).mean()

    def run():
        errors = {}
        for bits in (4, 6, 8, None):
            config = dataclasses.replace(
                preset, adc=ADCConfig(bits=bits, full_scale_fraction=0.25)
            )
            engine = CrossbarEngine(weight, config, geniex)
            engine.refit_gain(probes, weight)
            errors[bits] = float(np.abs(engine.matvec(test) - ideal).mean() / scale)
        return errors

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: ADC resolution ===")
    for bits, err in errors.items():
        print(f"  adc_bits={bits}: rel error {err:.4f}")
    # Coarse ADCs must not *help*; 4-bit should be clearly worse than off.
    assert errors[4] >= errors[None] - 1e-6
