"""Unit tests for the verification harness itself.

The harness is trusted infrastructure — a bug here silently weakens
every differential guarantee — so this file tests the checker, not the
engine: ULP accounting, the invariant catalog's own guard rails, the
conformance report (JSON round-trip, exit semantics, failure
recording), the ``repro verify`` CLI, and the attack contract.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings

from repro.cli import main
from repro.verify import invariants as inv
from repro.verify.contracts import (
    AttackContractViolation,
    assert_attack_contract,
    maybe_assert_attack_contract,
)
from repro.verify.report import CheckResult, ConformanceReport
from repro.verify.runner import _cases, run_verification, tiny_config
from repro.verify.strategies import adversarial_direction_inputs
from repro.verify.ulp import max_ulp, ulp_diff
from repro.xbar.simulator import IdealPredictor

pytestmark = pytest.mark.verify


@pytest.fixture(scope="module")
def case():
    return _cases(np.random.default_rng(0))


@pytest.mark.fast
class TestUlpAccounting:
    def test_identical_arrays_are_zero_ulp(self):
        a = np.array([0.0, -1.5, 3e7, np.pi])
        assert max_ulp(a, a.copy()) == 0

    def test_adjacent_floats_are_one_ulp(self):
        a = np.array([1.0])
        b = np.nextafter(a, 2.0)
        assert ulp_diff(a, b)[0] == 1
        assert max_ulp(a, b) == 1

    def test_signed_zeros_are_zero_ulp(self):
        assert max_ulp(np.array([0.0]), np.array([-0.0])) == 0

    def test_sign_crossing_counts_through_zero(self):
        a = np.array([np.nextafter(0.0, -1.0)])
        b = np.array([np.nextafter(0.0, 1.0)])
        assert max_ulp(a, b) == 2

    def test_expect_equal_raises_with_localized_report(self):
        with pytest.raises(inv.InvariantViolation, match="demo"):
            inv._expect_equal("demo", np.array([1.0]), np.array([1.0 + 1e-9]))


class TestCatalogGuardRails:
    """Checks that need preconditions must refuse invalid configs."""

    def test_zero_weight_check_rejects_noisy_config(self, case):
        _weight, x = case
        with pytest.raises(ValueError, match="noise"):
            inv.check_zero_weight_zero_output(
                tiny_config(program_sigma=0.05), IdealPredictor(), x
            )

    def test_dead_bank_check_rejects_calibrated_config(self, case):
        weight, x = case
        with pytest.raises(ValueError, match="gain_calibration"):
            inv.check_dead_bank_padding(
                weight, tiny_config(gain_calibration=8), IdealPredictor(), x
            )

    def test_empty_batch_check_passes(self, case):
        """Regression: (0, in) batches used to crash on ``x.max()``."""
        weight, _x = case
        inv.check_empty_batch(weight, tiny_config(), IdealPredictor())


class TestRunnerAndReport:
    def test_quick_catalog_passes_and_writes_json(self, tmp_path):
        out = tmp_path / "report.json"
        report = run_verification(seed=7, quick=True, out_path=out)
        assert report.passed
        assert report.counts["fail"] == 0
        data = json.loads(out.read_text())
        assert data["passed"] is True
        assert data["seed"] == 7
        assert data["quick"] is True
        assert len(data["checks"]) == len(report.results) > 0
        assert all(c["status"] in ("pass", "fail", "skip") for c in data["checks"])

    def test_runner_records_failures_without_raising(self, monkeypatch, tmp_path):
        def failing(_msg="drift"):
            raise inv.InvariantViolation("drift: 3 ulp")

        def crashing():
            raise ZeroDivisionError("boom")

        def bad_catalog(seed, quick):
            yield "demo/fail", failing
            yield "demo/crash", crashing
            yield "demo/pass", lambda: None

        monkeypatch.setattr("repro.verify.runner._catalog", bad_catalog)
        out = tmp_path / "bad.json"
        report = run_verification(out_path=out)
        assert not report.passed
        assert report.counts == {"pass": 1, "fail": 2, "skip": 0}
        assert "drift: 3 ulp" in report.summary()
        assert "ZeroDivisionError" in report.summary()
        assert json.loads(out.read_text())["passed"] is False

    def test_report_round_trips_details(self):
        report = ConformanceReport(
            seed=1, quick=False, kernel_default="vectorized", ckernels=True
        )
        report.record(CheckResult("a", "pass", 0.01))
        report.record(CheckResult("b", "skip", 0.0, "not applicable"))
        data = report.to_dict()
        assert data["counts"] == {"pass": 1, "fail": 0, "skip": 1}
        assert data["passed"] is True
        assert "not applicable" in report.summary()


class TestVerifyCli:
    def test_cli_quick_run_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "cli.json"
        assert main(["verify", "--quick", "--seed", "3", "--out", str(out)]) == 0
        assert out.exists()
        assert "verification catalog" in capsys.readouterr().out

    def test_cli_exits_nonzero_on_mismatch(self, monkeypatch, tmp_path):
        def fake(seed, quick, out_path):
            report = ConformanceReport(
                seed=seed, quick=quick, kernel_default="vectorized", ckernels=False
            )
            report.record(CheckResult("demo", "fail", 0.0, "drift"))
            return report

        monkeypatch.setattr("repro.verify.runner.run_verification", fake)
        code = main(["verify", "--quick", "--out", str(tmp_path / "r.json")])
        assert code == 1


@pytest.mark.slow
class TestFullCatalog:
    """The complete (non-quick) catalog — ~7 s, so gated behind --runslow.

    CI still runs it twice per push via ``scripts/verify_numerics.py``
    (with compiled kernels on and off); this test makes it reachable
    from pytest as well.
    """

    def test_full_catalog_passes(self, tmp_path):
        report = run_verification(
            seed=1234, quick=False, out_path=tmp_path / "full.json"
        )
        assert report.passed, report.summary()


@pytest.mark.fast
class TestAttackContract:
    def test_accepts_exactly_projected_points(self):
        x = np.linspace(0.0, 1.0, 12, dtype=np.float32).reshape(3, 4)
        eps = 8 / 255
        x_adv = np.clip(x + eps, np.maximum(x - eps, 0.0), np.minimum(x + eps, 1.0))
        assert_attack_contract(x_adv, x, eps)

    def test_rejects_epsilon_escape(self):
        x = np.full((2, 2), 0.5, dtype=np.float32)
        with pytest.raises(AttackContractViolation, match="leave the eps"):
            assert_attack_contract(x + 0.2, x, epsilon=0.1)

    def test_rejects_domain_escape(self):
        x = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(AttackContractViolation):
            assert_attack_contract(x - 0.05, x, epsilon=0.5)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(AttackContractViolation, match="shape"):
            assert_attack_contract(np.zeros((2, 3)), np.zeros((3, 2)), 0.1)

    def test_rejects_non_finite(self):
        x = np.zeros((2, 2))
        bad = x.copy()
        bad[0, 0] = np.nan
        with pytest.raises(AttackContractViolation, match="non-finite"):
            assert_attack_contract(bad, x, 0.1)

    def test_maybe_variant_is_env_gated(self, monkeypatch):
        x = np.full((2, 2), 0.5)
        escaped = x + 0.2
        monkeypatch.delenv("REPRO_VERIFY_ATTACKS", raising=False)
        maybe_assert_attack_contract(escaped, x, epsilon=0.1)  # no-op by default
        monkeypatch.setenv("REPRO_VERIFY_ATTACKS", "1")
        with pytest.raises(AttackContractViolation):
            maybe_assert_attack_contract(escaped, x, epsilon=0.1)

    @settings(max_examples=25, deadline=None)
    @given(trip=adversarial_direction_inputs(shape=(2, 3, 4, 4)))
    def test_accepts_pgd_step_geometry(self, trip):
        """Points on the ball surface or domain boundary always pass."""
        x, x_adv, eps = trip
        assert_attack_contract(x_adv, x, eps)
