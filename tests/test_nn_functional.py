"""Tests for softmax/cross-entropy and friends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients
from repro.nn import functional as F


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = Tensor(rng.normal(size=(4, 7)).astype(np.float32))
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.data.sum(axis=1), np.ones(4), rtol=1e-5)

    def test_stable_under_large_logits(self):
        logits = Tensor(np.array([[1000.0, 1000.0]], dtype=np.float32))
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = Tensor(rng.normal(size=(3, 5)).astype(np.float32))
        np.testing.assert_allclose(
            F.log_softmax(logits).data, np.log(F.softmax(logits).data), rtol=1e-4, atol=1e-5
        )


class TestCrossEntropy:
    def test_uniform_logits_give_log_c(self):
        logits = Tensor(np.zeros((2, 4), dtype=np.float32), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([0, 3]))
        assert abs(loss.item() - np.log(4)) < 1e-5

    def test_perfect_prediction_near_zero_loss(self):
        logits = np.full((1, 3), -50.0, dtype=np.float32)
        logits[0, 1] = 50.0
        loss = F.cross_entropy(Tensor(logits, requires_grad=True), np.array([1]))
        assert loss.item() < 1e-5

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        labels = np.array([0, 1, 2])
        loss = F.cross_entropy(logits, labels)
        loss.backward()
        probs = F.softmax(Tensor(logits.data)).data
        expected = (probs - F.one_hot(labels, 4)) / 3
        np.testing.assert_allclose(logits.grad, expected, rtol=1e-4, atol=1e-6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True, dtype=np.float64)
        labels = np.array([1, 0, 3])
        check_gradients(lambda lg: F.cross_entropy(lg, labels), [logits])

    def test_matches_nll_of_log_softmax(self, rng):
        logits_data = rng.normal(size=(5, 6)).astype(np.float32)
        labels = rng.integers(0, 6, size=5)
        ce = F.cross_entropy(Tensor(logits_data, requires_grad=True), labels)
        nll = F.nll_loss(F.log_softmax(Tensor(logits_data, requires_grad=True)), labels)
        assert abs(ce.item() - nll.item()) < 1e-4


class TestSoftTargets:
    def test_soft_cross_entropy_minimized_at_target(self):
        target = np.array([[0.7, 0.3]], dtype=np.float32)
        # Logits matching the target distribution give entropy(target).
        matched = F.soft_cross_entropy(
            Tensor(np.log(target), requires_grad=True), target
        ).item()
        uniform = F.soft_cross_entropy(
            Tensor(np.zeros((1, 2), dtype=np.float32), requires_grad=True), target
        ).item()
        assert matched < uniform

    def test_shape_check(self):
        with pytest.raises(ValueError):
            F.soft_cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((2, 4)))

    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        loss = F.mse_loss(pred, np.array([0.0, 0.0]))
        assert abs(loss.item() - 2.5) < 1e-6


class TestMetrics:
    def test_one_hot(self):
        out = F.one_hot(np.array([1, 0]), 3)
        np.testing.assert_allclose(out, [[0, 1, 0], [1, 0, 0]])

    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        labels = np.array([0, 1, 1])
        assert abs(F.accuracy(logits, labels) - 2 / 3) < 1e-9


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=6),
    c=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_cross_entropy_positive_and_bounded_below(n, c, seed):
    """CE >= 0 and the gradient rows always sum to zero."""
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(n, c)).astype(np.float32), requires_grad=True)
    labels = rng.integers(0, c, size=n)
    loss = F.cross_entropy(logits, labels)
    assert loss.item() >= 0.0
    loss.backward()
    np.testing.assert_allclose(logits.grad.sum(axis=1), np.zeros(n), atol=1e-6)
