"""Integration tests: every table/figure experiment runs end-to-end.

Everything is shrunk: the dataset registry is patched to a tiny task,
the Table-I presets are patched to 8x8/16x16 crossbars (so GENIEx
trains in seconds), and the evaluation scale is tiny.  These tests
verify plumbing and output structure, not the paper's numbers — the
benchmarks do that at real scale.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.xbar.presets as presets_mod
from repro.core.evaluation import EvaluationScale, HardwareLab
from repro.data import synthetic
from repro.experiments import fig2, fig3, fig4, fig5, fig6, table1, table2, table3, table4
from repro.experiments.config import paper_eps
from repro.experiments.shared import AttackFactory
from repro.train.zoo import ModelZoo

from tests.conftest import make_tiny_crossbar_config


@pytest.fixture(scope="module")
def experiment_env(tmp_path_factory):
    """Patch datasets + crossbar presets to tiny variants (module scope)."""
    tmp = tmp_path_factory.mktemp("experiment-artifacts")

    tiny_spec = synthetic.SyntheticTaskSpec(
        name="cifar10",
        num_classes=4,
        image_size=8,
        train_size=300,
        test_size=120,
        prototypes_per_class=1,
        basis_cutoff=3,
        instance_noise=0.4,
        pixel_noise=0.05,
        model="resnet20",
        model_width=4,
        epochs=2,
        seed=42,
        attack_eval_size=32,
    )
    saved_tasks = dict(synthetic.TASKS)
    synthetic.TASKS["cifar10"] = tiny_spec

    saved_presets = dict(presets_mod.CROSSBAR_PRESETS)
    # Tiny stand-ins with the same NF ordering: small/low-R -> higher NF.
    presets_mod.CROSSBAR_PRESETS["64x64_300k"] = make_tiny_crossbar_config(
        rows=8, cols=8, r_on=300e3
    )
    presets_mod.CROSSBAR_PRESETS["32x32_100k"] = make_tiny_crossbar_config(
        rows=8, cols=8, r_on=150e3
    )
    presets_mod.CROSSBAR_PRESETS["64x64_100k"] = make_tiny_crossbar_config(
        rows=16, cols=16, r_on=100e3
    )
    # Names must match the registry keys for reporting.
    for key in presets_mod.CROSSBAR_PRESETS:
        cfg = presets_mod.CROSSBAR_PRESETS[key]
        presets_mod.CROSSBAR_PRESETS[key] = presets_mod.with_overrides(cfg, name=key)

    lab = HardwareLab(scale=EvaluationScale.tiny(), zoo=ModelZoo(cache_dir=tmp))
    # GENIEx caches also go to the tmp dir.
    import os

    saved_env = os.environ.get("REPRO_ARTIFACTS")
    os.environ["REPRO_ARTIFACTS"] = str(tmp)

    yield lab

    synthetic.TASKS.clear()
    synthetic.TASKS.update(saved_tasks)
    presets_mod.CROSSBAR_PRESETS.clear()
    presets_mod.CROSSBAR_PRESETS.update(saved_presets)
    if saved_env is None:
        os.environ.pop("REPRO_ARTIFACTS", None)
    else:
        os.environ["REPRO_ARTIFACTS"] = saved_env


@pytest.fixture(scope="module")
def factory(experiment_env):
    return AttackFactory(experiment_env)


class TestConfigHelpers:
    def test_paper_eps_scales(self):
        from repro.experiments.config import EPS_SCALE

        assert paper_eps("cifar10", 1) == pytest.approx(EPS_SCALE["cifar10"] / 255)

    def test_experiment_result_format(self):
        from repro.experiments.config import ExperimentResult

        result = ExperimentResult(name="X", headline="h", rows=["a", "b"])
        text = result.format()
        assert text.startswith("=== X: h ===")
        assert "a" in text and "b" in text


class TestTable1:
    def test_runs_and_orders(self, experiment_env):
        result = table1.run(num_matrices=2, vectors_per_matrix=4)
        assert len(result.data) == 3
        for name, values in result.data.items():
            assert values["nf_circuit"] > 0


class TestTable2:
    def test_runs(self):
        result = table2.run()
        assert len(result.rows) == 4


class TestTable3:
    def test_single_task_cells(self, experiment_env, factory):
        cells = table3.run_task(experiment_env, "cifar10", factory)
        attacks = [c.attack for c in cells]
        assert attacks[0] == "Clean"
        assert any("Ensemble" in a for a in attacks)
        assert any("Square" in a for a in attacks)
        assert sum("White Box" in a for a in attacks) == 2
        for cell in cells:
            assert set(cell.variants) >= {"64x64_300k", "32x32_100k", "64x64_100k"}
            for value in cell.variants.values():
                assert 0.0 <= value <= 1.0

    def test_full_run_formats(self, experiment_env, factory):
        result = table3.run(experiment_env, tasks=["cifar10"])
        assert "--- cifar10 ---" in result.rows
        assert "cifar10" in result.data


class TestTable4:
    def test_blocks(self, experiment_env, factory):
        ensemble_cell = table4.run_ensemble_block(experiment_env, "cifar10", factory)
        assert "HIL Ensemble" in ensemble_cell.attack
        square_cell = table4.run_square_block(experiment_env, "cifar10", factory)
        assert "HIL Square" in square_cell.attack
        wb_cell = table4.run_whitebox_block(experiment_env, "cifar10", factory, 1)
        assert "HIL White Box" in wb_cell.attack
        assert set(wb_cell.variants) == {"64x64_300k", "32x32_100k", "64x64_100k"}

    def test_full_run(self, experiment_env):
        result = table4.run(experiment_env, tasks=["cifar10"], whitebox_ks=(1,))
        assert len(result.data["cifar10"]) == 3


class TestFigures:
    def test_fig2(self, experiment_env, factory):
        result = fig2.run(experiment_env, tasks=["cifar10"], eps_grid=(2, 4), factory=factory)
        cells = result.data["cifar10"]
        assert len(cells) == 2
        assert cells[0].epsilon < cells[1].epsilon

    def test_fig3(self, experiment_env, factory):
        result = fig3.run(experiment_env, tasks=["cifar10"], eps_grid=(4,), factory=factory)
        assert len(result.data["cifar10"]) == 1

    def test_fig4(self, experiment_env, factory):
        result = fig4.run(experiment_env, tasks=["cifar10"], eps_grid=(1, 2), factory=factory)
        baselines = [c.baseline for c in result.data["cifar10"]]
        assert baselines[0] >= baselines[1] - 0.2

    def test_fig5_reuses_cells(self, experiment_env, factory):
        cells = {"cifar10": table3.run_task(experiment_env, "cifar10", factory)}
        result = fig5.run(experiment_env, tasks=["cifar10"], cells_by_task=cells)
        points = result.data["points"]
        assert points
        presets = {p.preset for p in points}
        assert presets == {"64x64_300k", "32x32_100k", "64x64_100k"}

    def test_fig6(self, experiment_env, factory):
        result = fig6.run(
            experiment_env,
            tasks=["cifar10"],
            eps_grid=(4,),
            attacker_presets=["64x64_300k", "64x64_100k"],
            factory=factory,
        )
        cells = result.data["cifar10"]
        assert len(cells) == 2
        for cell in cells:
            assert fig6.TARGET_PRESET in cell.variants


class TestAttackFactoryCaching:
    def test_ensemble_cached_per_victim(self, experiment_env, factory):
        victim = experiment_env.victim("cifar10")
        first = factory.fitted_ensemble("cifar10", victim)
        second = factory.fitted_ensemble("cifar10", victim)
        assert first is second

    def test_different_victims_get_different_ensembles(self, experiment_env, factory):
        victim = experiment_env.victim("cifar10")
        hardware = experiment_env.hardware("cifar10", "64x64_300k")
        assert factory.fitted_ensemble("cifar10", victim) is not factory.fitted_ensemble(
            "cifar10", hardware
        )
