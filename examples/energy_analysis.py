"""Energy and latency analysis: crossbar inference vs digital CMOS.

Quantifies the paper's motivating claim (§I): in-situ analog MVM
"can significantly lower power and latency compared to digital CMOS",
because the dominant cost of low-batch digital inference — streaming
every weight through the memory hierarchy — disappears when weights
*are* the compute fabric.

Also shows the countervailing effect: ADC cost, and how large batches
let the digital engine amortize its weight traffic.

Run:  python examples/energy_analysis.py [--fast]
"""

import argparse

import numpy as np

from repro.nn import resnet20
from repro.xbar import crossbar_preset, convert_to_hardware
from repro.xbar.energy import EnergyConfig, estimate_model
from repro.xbar.simulator import IdealPredictor


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="64x64_100k")
    parser.add_argument("--width", type=int, default=8)
    args = parser.parse_args()

    # Energy accounting only depends on layer geometry, so the fast
    # parasitic-free backend is fine here.
    model = resnet20(num_classes=10, width=args.width, seed=0)
    model.eval()
    preset = crossbar_preset(args.preset)
    hardware = convert_to_hardware(model, preset, predictor=IdealPredictor())

    print(f"ResNet-20 (width {args.width}) on {preset.name}, one 16x16 image:\n")
    estimate = estimate_model(hardware, (3, 16, 16), batch=1)
    print(estimate.format())

    print("\nper-component analog energy breakdown (whole model):")
    totals: dict[str, float] = {}
    for layer in estimate.layers:
        for key, value in layer.breakdown.items():
            totals[key] = totals.get(key, 0.0) + value
    for key, value in sorted(totals.items(), key=lambda kv: -kv[1]):
        print(f"  {key:<10} {value / 1e6:8.3f} uJ ({value / estimate.analog_pj * 100:5.1f}%)")

    print("\nbatch sweep (digital amortizes weight traffic; analog is per-vector):")
    print(f"{'batch':>6} {'analog uJ':>10} {'digital uJ':>11} {'ratio':>7}")
    for batch in (1, 4, 16, 64, 256):
        est = estimate_model(hardware, (3, 16, 16), batch=batch)
        print(
            f"{batch:>6} {est.analog_pj / 1e6:>10.2f} {est.digital_pj / 1e6:>11.2f} "
            f"{est.energy_ratio:>7.2f}"
        )

    print("\nADC cost sensitivity (the analog tax):")
    for adc_pj in (0.5, 2.0, 8.0):
        est = estimate_model(
            hardware, (3, 16, 16), energy=EnergyConfig(adc_pj_per_sample=adc_pj)
        )
        print(f"  adc {adc_pj:4.1f} pJ/sample -> digital/analog ratio {est.energy_ratio:5.2f}")


if __name__ == "__main__":
    main()
