"""Compare intrinsic crossbar robustness with software defenses.

Reproduces the comparison of §III-C.3 / Table III: the crossbars'
intrinsic robustness vs input bit-width reduction (4-bit), stochastic
activation pruning (SAP) and random resize+pad — all wrapped around the
same pretrained victim, all facing the same non-adaptive attacks.

Key point from the paper's discussion: crossbar robustness is *free*
(it is a property of the inference hardware), while the software
defenses add inference-time compute; and the two compose.

Run:  python examples/defense_comparison.py [--fast]
"""

import argparse

from repro.attacks import PGD, SquareAttack
from repro.core.evaluation import EvaluationScale, HardwareLab, adversarial_accuracy
from repro.xbar.presets import preset_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--task", default="cifar10")
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()

    if args.fast:
        lab = HardwareLab(scale=EvaluationScale.tiny(), victim_epochs=2, victim_width=4)
        pgd_iters, square_queries = 5, 10
    else:
        lab = HardwareLab(scale=EvaluationScale(eval_size=64))
        pgd_iters, square_queries = 30, 120

    victim = lab.victim(args.task)
    x, y = lab.eval_set(args.task)
    defenders = {name: lab.hardware(args.task, name) for name in preset_names()}
    defenders["4-bit input"] = lab.defense(args.task, "bitwidth4")
    defenders["SAP"] = lab.defense(args.task, "sap")

    attacks = {
        "white-box PGD eps~1/255": PGD(8 / 255, iterations=pgd_iters).generate,
        "white-box PGD eps~2/255": PGD(16 / 255, iterations=pgd_iters).generate,
        "Square Attack eps~4/255": SquareAttack(
            32 / 255, max_queries=square_queries
        ).generate,
    }

    for attack_name, generate in attacks.items():
        x_adv = generate(victim, x, y).x_adv
        baseline = adversarial_accuracy(victim, x_adv, y)
        print(f"\n{attack_name}: digital baseline {baseline * 100:.1f}%")
        for name, defender in defenders.items():
            accuracy = adversarial_accuracy(defender, x_adv, y)
            print(f"  {name:<14} {accuracy * 100:5.1f}%  ({(accuracy - baseline) * 100:+5.1f})")


if __name__ == "__main__":
    main()
