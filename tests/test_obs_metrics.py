"""Metrics registry tests: P² quantiles vs numpy, counters, gauges.

The P² estimator is the one piece of the obs layer with real numerical
content, so it gets the property-based treatment: the exact tier
(n <= 5) must agree with ``numpy.quantile`` to rounding error on
arbitrary streams, the streaming tier must stay inside the observed
range on arbitrary streams, and on well-behaved i.i.d. samples it must
converge to the numpy quantile.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    format_hotpath_fields,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
quantile_ps = st.floats(min_value=0.05, max_value=0.95)


class TestP2Quantile:
    @given(xs=st.lists(finite_floats, min_size=1, max_size=5), p=quantile_ps)
    @settings(deadline=None, max_examples=200)
    def test_exact_tier_matches_numpy(self, xs, p):
        """With <= 5 observations the estimator is numpy's linear quantile."""
        est = P2Quantile(p)
        for x in xs:
            est.observe(x)
        expected = float(np.quantile(np.asarray(xs, dtype=np.float64), p))
        assert est.value() == pytest.approx(expected, rel=1e-9, abs=1e-9)

    @given(xs=st.lists(finite_floats, min_size=6, max_size=80), p=quantile_ps)
    @settings(deadline=None, max_examples=100)
    def test_streaming_tier_stays_in_range(self, xs, p):
        """Whatever the stream, the estimate never leaves [min, max]."""
        est = P2Quantile(p)
        for x in xs:
            est.observe(x)
        assert min(xs) <= est.value() <= max(xs)
        assert est.count == len(xs)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=100, max_value=500),
        p=st.sampled_from([0.5, 0.9, 0.99]),
    )
    @settings(deadline=None, max_examples=40)
    def test_converges_on_uniform_samples(self, seed, n, p):
        """On i.i.d. U(0,1) streams the estimate tracks numpy.quantile."""
        xs = np.random.default_rng(seed).random(n)
        est = P2Quantile(p)
        for x in xs:
            est.observe(float(x))
        assert abs(est.value() - float(np.quantile(xs, p))) < 0.12

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        p=st.sampled_from([0.5, 0.9]),
    )
    @settings(deadline=None, max_examples=20)
    def test_converges_on_normal_samples(self, seed, p):
        """Scale-invariance sanity: N(3, 2) streams, tolerance in sigma."""
        xs = np.random.default_rng(seed).normal(3.0, 2.0, size=400)
        est = P2Quantile(p)
        for x in xs:
            est.observe(float(x))
        assert abs(est.value() - float(np.quantile(xs, p))) < 0.35 * 2.0

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value())

    def test_rejects_degenerate_p(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.as_dict() == pytest.approx(3.5)

    def test_gauge_tracks_envelope(self):
        g = Gauge()
        for v in (3.0, -1.0, 2.0):
            g.set(v)
        d = g.as_dict()
        assert d == {"value": 2.0, "min": -1.0, "max": 3.0, "updates": 3}

    def test_gauge_empty_as_dict_is_zeroed(self):
        assert Gauge().as_dict() == {"value": 0.0, "min": 0.0, "max": 0.0, "updates": 0}


class TestHistogram:
    def test_as_dict_quantile_keys(self, rng):
        h = Histogram()
        for x in rng.random(64):
            h.observe(float(x))
        d = h.as_dict()
        assert d["count"] == 64
        assert {"p50", "p90", "p99"} <= set(d)
        assert d["min"] <= d["p50"] <= d["p90"] <= d["max"]
        assert d["mean"] == pytest.approx(d["sum"] / 64)

    def test_empty_histogram(self):
        assert Histogram().as_dict() == {"count": 0}


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_sorted_and_clear(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc(2)
        reg.gauge("g").set(1.5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["gauges"]["g"]["value"] == 1.5
        reg.clear()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestHotpathFormatting:
    def test_format_hotpath_fields_single_path(self):
        """One formatter for every counter line (PerfCounters delegates)."""
        from repro.xbar.perf import PerfCounters

        counters = PerfCounters(
            matvec_calls=2,
            matvec_rows=100,
            bank_evals=8,
            streams_evaluated=12,
            streams_skipped=4,
            rows_compacted=30,
            predictor_seconds=0.25,
        )
        line = format_hotpath_fields(counters.as_dict())
        assert line == counters.format()
        assert "streams=12 evaluated / 4 skipped (25.0%)" in line
        assert "predictor=0.250s" in line
