"""Lightweight performance counters for the analog hot path.

Every :class:`~repro.xbar.simulator.CrossbarEngine` owns a
:class:`PerfCounters` instance that the MVM kernels update as they run:
how many matvec batches were served, how many bit-streams were actually
evaluated vs skipped (all-zero streams are never driven), how many
predictor (analog bank) evaluations happened, and how much wall time
was spent inside the column predictor.  The counters are pure
bookkeeping — they never influence numerics — and cost a few integer
adds per bank, so they stay on in production.

The counters are the cheap accumulation *backend* of the observability
layer: :func:`repro.obs.metrics.publish_hotpath` folds them (plus the
engine-cache stats) into the metrics registry as gauges, and all text
rendering lives in :mod:`repro.obs.metrics` so there is exactly one
formatting path.  :func:`format_perf` — the ``--perf`` CLI alias —
publishes and renders through that registry view.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.obs.metrics import (
    MetricsRegistry,
    REGISTRY,
    format_hotpath_fields,
    publish_hotpath,
    render_hotpath,
)


@dataclass
class PerfCounters:
    """Hot-path activity counters for one crossbar engine.

    Attributes
    ----------
    matvec_calls:
        Analog ``matvec`` batches served (signed inputs count once even
        though they split into two unsigned passes).
    matvec_rows:
        Total input vectors pushed through the engine.
    bank_evals:
        Column-predictor invocations (one per tile-row bank in the
        vectorized kernel; one per bank *and* stream in the reference
        kernel).
    streams_evaluated:
        (bank, bit-stream) pairs that carried a non-zero voltage
        pattern and were actually evaluated.
    streams_skipped:
        (bank, bit-stream) pairs skipped because the stream segment was
        all zero (nothing to drive).
    rows_compacted:
        Voltage rows removed from predictor calls because they were all
        zero within an otherwise active stream (their currents come from
        a cached once-per-bank zero-row evaluation instead).
    predictor_seconds:
        Wall time spent inside ``predict_from_bias`` calls.
    int_matvec_calls:
        Batches served through the integer pulse-expansion path
        (``QuantConfig(mode="int8")`` with a calibrated input scale).
    planes_evaluated:
        (bank, pulse-plane) pairs driven through the predictor by the
        integer path.
    planes_skipped:
        (bank, pulse-plane) pairs skipped because the plane segment was
        all zero (nothing to drive) — the integer path's analogue of
        ``streams_skipped``.
    int_sat_events:
        Integer matvec calls whose shift-and-add accumulator exceeded
        the int32 range — headroom telemetry: the engine accumulates in
        int64 so results stay exact, but 32-bit hardware accumulators
        would have saturated.
    """

    matvec_calls: int = 0
    matvec_rows: int = 0
    bank_evals: int = 0
    streams_evaluated: int = 0
    streams_skipped: int = 0
    rows_compacted: int = 0
    predictor_seconds: float = 0.0
    int_matvec_calls: int = 0
    planes_evaluated: int = 0
    planes_skipped: int = 0
    int_sat_events: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, f.default)

    def merge(self, other: "PerfCounters") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def format(self) -> str:
        return format_hotpath_fields(self.as_dict())


@dataclass
class PerfReport:
    """Aggregated counters for one converted hardware model."""

    layers: dict = field(default_factory=dict)  # name -> PerfCounters
    total: PerfCounters = field(default_factory=PerfCounters)

    def as_dict(self) -> dict:
        return {
            "total": self.total.as_dict(),
            "layers": {name: c.as_dict() for name, c in self.layers.items()},
        }


def iter_engines(model):
    """Yield ``(layer_name, engine)`` for every non-ideal layer.

    Duck-typed on ``module.engine.perf`` so this module stays free of a
    circular import on the simulator.
    """
    for name, module in model.named_modules():
        engine = getattr(module, "engine", None)
        if engine is not None and hasattr(engine, "perf"):
            yield name or type(module).__name__, engine


def perf_report(model) -> PerfReport:
    """Aggregate the per-engine counters of a converted model."""
    report = PerfReport()
    for name, engine in iter_engines(model):
        report.layers[name] = engine.perf
        report.total.merge(engine.perf)
    return report


def reset_perf(model) -> None:
    """Zero every engine counter of a converted model."""
    for _name, engine in iter_engines(model):
        engine.perf.reset()


def format_perf(models: dict, per_layer: bool = False) -> str:
    """Render the hot-path report for ``{label: hardware_model}``.

    Publishes the counters + engine-cache stats into the global metrics
    registry (so an active ``--obs`` run absorbs them) and renders the
    registry's hot-path view scoped to exactly these models.
    """
    publish_hotpath(models, REGISTRY)
    scoped = MetricsRegistry()
    publish_hotpath(models, scoped)
    return render_hotpath(scoped, per_layer=per_layer)
