"""Energy and latency estimation for crossbar-mapped DNN inference.

The paper's motivation (§I) is that in-memory analog MVM "can
significantly lower power and latency compared to digital CMOS".  This
module quantifies that claim for the models used in the evaluation,
with an ISAAC/PUMA-style component model:

* every (tile, weight-slice, sign, input-stream) combination is one
  analog crossbar read: all cells of the array dissipate, every used
  column is digitized once;
* DACs drive the rows once per stream; shift-and-add and partial-sum
  accumulation are digital adds;
* the digital reference executes the same layer as int8 MACs with SRAM
  traffic.

Default constants are representative 32nm-class numbers from the ISAAC
(Shafiee et al., ISCA'16) and PUMA (Ankit et al., ASPLOS'19) papers'
component tables; they are configuration, not measurement — the point
is the relative analog-vs-digital shape, which is robust to the exact
constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn.conv import conv_output_size
from repro.nn.module import Module
from repro.xbar.presets import CrossbarConfig
from repro.xbar.simulator import NonIdealConv2d, NonIdealLinear


@dataclass(frozen=True)
class EnergyConfig:
    """Per-component energy/latency constants.

    Energies in picojoules, times in nanoseconds.
    """

    # Analog path
    crossbar_read_pj_per_cell: float = 0.0005  # ~0.5 fJ per cell per read
    dac_pj_per_row: float = 0.1  # 1 DAC conversion per row per stream
    adc_pj_per_sample: float = 2.0  # 8-bit SAR/flash class
    shift_add_pj: float = 0.05  # digital shift-and-add per column sample
    crossbar_read_ns: float = 100.0  # one analog MVM cycle
    adc_ns_per_sample: float = 1.0  # pipelined column digitization
    pipeline_factor: int = 16  # PUMA-style inter-tile/stream pipelining

    # Digital reference (int8 MAC datapath + SRAM + DRAM weight traffic).
    # The DRAM term is the von Neumann bottleneck the paper's intro
    # cites: a digital engine streams every weight from memory once per
    # batch, which in-situ crossbar storage eliminates entirely.
    mac_pj: float = 0.25
    sram_pj_per_byte: float = 0.8
    dram_pj_per_byte: float = 20.0
    mac_ns: float = 0.5  # effective per-MAC time at modest parallelism
    digital_parallelism: int = 256  # MAC units in the reference engine


@dataclass
class LayerEnergy:
    """Energy/latency accounting for one layer."""

    name: str
    mvm_vectors: int  # input vectors (batch x spatial positions)
    crossbar_reads: int  # analog array activations
    adc_samples: int
    analog_pj: float
    analog_ns: float
    digital_pj: float
    digital_ns: float
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def energy_ratio(self) -> float:
        """Digital / analog energy (higher = crossbar wins harder)."""
        return self.digital_pj / self.analog_pj if self.analog_pj > 0 else float("inf")


@dataclass
class ModelEnergy:
    """Whole-model totals."""

    layers: list[LayerEnergy]

    @property
    def analog_pj(self) -> float:
        return sum(layer.analog_pj for layer in self.layers)

    @property
    def digital_pj(self) -> float:
        return sum(layer.digital_pj for layer in self.layers)

    @property
    def analog_ns(self) -> float:
        return sum(layer.analog_ns for layer in self.layers)

    @property
    def digital_ns(self) -> float:
        return sum(layer.digital_ns for layer in self.layers)

    @property
    def energy_ratio(self) -> float:
        return self.digital_pj / self.analog_pj if self.analog_pj > 0 else float("inf")

    def format(self) -> str:
        lines = [
            f"{'layer':<28} {'vectors':>8} {'xbar reads':>11} "
            f"{'analog uJ':>10} {'digital uJ':>11} {'ratio':>7}"
        ]
        for layer in self.layers:
            lines.append(
                f"{layer.name:<28} {layer.mvm_vectors:>8} {layer.crossbar_reads:>11} "
                f"{layer.analog_pj / 1e6:>10.3f} {layer.digital_pj / 1e6:>11.3f} "
                f"{layer.energy_ratio:>7.1f}"
            )
        lines.append(
            f"{'TOTAL':<28} {'':>8} {'':>11} {self.analog_pj / 1e6:>10.3f} "
            f"{self.digital_pj / 1e6:>11.3f} {self.energy_ratio:>7.1f}"
        )
        lines.append(
            f"latency: analog {self.analog_ns / 1e3:.1f} us vs digital "
            f"{self.digital_ns / 1e3:.1f} us (per input batch)"
        )
        return "\n".join(lines)


def _layer_mvm_geometry(
    layer: NonIdealConv2d | NonIdealLinear,
) -> tuple[int, int, int]:
    """(vectors_per_image, in_features, out_features).

    Conv layers report the spatial size they actually saw during the
    probe forward pass (recorded as ``last_input_hw``), so shortcut
    convolutions and stride-2 blocks are sized correctly.
    """
    if isinstance(layer, NonIdealLinear):
        return 1, layer.in_features, layer.out_features
    input_hw = getattr(layer, "last_input_hw", None)
    if input_hw is None:
        raise ValueError(
            "conv layer has no recorded input size; run a forward pass first"
        )
    h, w = input_hw
    k, s, p = layer.kernel_size, layer.stride, layer.padding
    h_out = conv_output_size(h, k, s, p)
    w_out = conv_output_size(w, k, s, p)
    return h_out * w_out, layer.in_channels * k * k, layer.out_channels


def estimate_layer(
    name: str,
    layer: NonIdealConv2d | NonIdealLinear | None,
    config: CrossbarConfig,
    vectors: int,
    in_features: int,
    out_features: int,
    energy: EnergyConfig,
) -> LayerEnergy:
    """Energy of one layer for ``vectors`` input vectors."""
    bs = config.bitslice
    rows, cols = config.rows, config.cols
    row_tiles = -(-in_features // rows)
    col_tiles = -(-out_features // cols)
    arrays = row_tiles * col_tiles * bs.num_slices * 2  # differential pairs
    used_cols_total = row_tiles * bs.num_slices * 2 * out_features

    reads = vectors * bs.num_streams * arrays
    adc_samples = vectors * bs.num_streams * used_cols_total
    dac_conversions = vectors * bs.num_streams * row_tiles * rows * (
        col_tiles * bs.num_slices * 2
    )

    xbar_pj = reads * rows * cols * energy.crossbar_read_pj_per_cell
    dac_pj = dac_conversions * energy.dac_pj_per_row
    adc_pj = adc_samples * energy.adc_pj_per_sample
    digital_add_pj = adc_samples * energy.shift_add_pj
    analog_pj = xbar_pj + dac_pj + adc_pj + digital_add_pj
    # All arrays of a layer fire in parallel; successive vectors and
    # streams are pipelined across the DAC/read/ADC stages.
    analog_ns = (
        vectors * bs.num_streams * energy.crossbar_read_ns / energy.pipeline_factor
        + (adc_samples / max(arrays, 1)) * energy.adc_ns_per_sample
    )

    macs = vectors * in_features * out_features
    sram_bytes = vectors * (in_features + out_features)
    weight_bytes = in_features * out_features  # fetched once per batch
    digital_pj = (
        macs * energy.mac_pj
        + sram_bytes * energy.sram_pj_per_byte
        + weight_bytes * energy.dram_pj_per_byte
    )
    digital_ns = macs / energy.digital_parallelism * energy.mac_ns

    return LayerEnergy(
        name=name,
        mvm_vectors=vectors,
        crossbar_reads=reads,
        adc_samples=adc_samples,
        analog_pj=analog_pj,
        analog_ns=analog_ns,
        digital_pj=digital_pj,
        digital_ns=digital_ns,
        breakdown={
            "crossbar": xbar_pj,
            "dac": dac_pj,
            "adc": adc_pj,
            "shift_add": digital_add_pj,
        },
    )


def estimate_model(
    hardware: Module,
    input_shape: tuple[int, int, int],
    batch: int = 1,
    energy: EnergyConfig | None = None,
) -> ModelEnergy:
    """Energy/latency accounting for a converted hardware model.

    Parameters
    ----------
    hardware:
        Output of :func:`repro.xbar.convert_to_hardware`.
    input_shape:
        (channels, height, width) of one input image.
    batch:
        Images per inference batch.
    """
    import numpy as np

    from repro.autograd.tensor import Tensor, no_grad

    energy = energy or EnergyConfig()
    c, h, w = input_shape
    # Probe forward: each conv records the spatial size it receives, so
    # residual shortcuts and strided stages are accounted exactly.
    with no_grad():
        hardware(Tensor(np.zeros((1, c, h, w), dtype=np.float32)))
    layers: list[LayerEnergy] = []
    for name, module in hardware.named_modules():
        if not isinstance(module, (NonIdealConv2d, NonIdealLinear)):
            continue
        vectors_per_image, in_features, out_features = _layer_mvm_geometry(module)
        config = module.engine.config
        layers.append(
            estimate_layer(
                name,
                module,
                config,
                vectors_per_image * batch,
                in_features,
                out_features,
                energy,
            )
        )
    if not layers:
        raise ValueError("model has no non-ideal layers; convert it first")
    return ModelEnergy(layers=layers)
