"""Execution backends: serial in-process or a persistent process pool.

The pipeline's batch-axis operations (logit prediction, calibration
sweeps, per-image attack loops, surrogate distillation) are expressed
as lists of :class:`ShardTask` and handed to the installed backend:

* :class:`SerialBackend` (default) runs every shard in order, in
  process — exactly the computation the code performed before this
  module existed.
* :class:`ProcessBackend` ships shards to a persistent
  ``ProcessPoolExecutor``.  The model is pickled **once** into a
  shared-memory arena (:mod:`repro.parallel.shm`), so N workers map one
  physical copy of the weights and programmed conductances.  Results
  and telemetry are merged strictly in shard order, which together with
  the canonical shard plan and per-shard seed streams
  (:mod:`repro.parallel.scheduler`) makes parallel output bit-identical
  to serial output at any worker count.

Failures degrade gracefully: a worker crash, pickling failure or a
platform without POSIX shared memory flips the backend to serial (with
one warning) and re-runs the map in process, so ``--workers N`` can
never produce *fewer* results than ``--workers 1``.
"""

from __future__ import annotations

import atexit
import contextlib
import logging
import multiprocessing as mp
import os
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.parallel import shm
from repro.parallel.queue import QueuePolicy, WorkQueue

logger = logging.getLogger(__name__)

#: True inside a pool worker (set by ``worker.worker_init``); guards
#: against recursive pool creation.
_IN_WORKER = False


@dataclass
class ShardTask:
    """One unit of work: a registered shard function plus its payload."""

    fn: str
    payload: dict = field(default_factory=dict)


class ExecutionBackend:
    """Interface every backend implements."""

    workers: int = 1

    def run_tasks(self, model, tasks: "list[ShardTask]") -> list:
        """Execute ``tasks`` against ``model``, results in task order."""
        raise NotImplementedError

    def invalidate(self, model) -> None:
        """Drop any shared snapshot of ``model`` (call after mutating it).

        Pooled process backends outlive the ``parallel_backend()``
        context that used them, so a mutation made while *any* backend
        is active (serial included) must reach every pooled snapshot —
        otherwise a later context entry would map the stale share.
        """
        _invalidate_pooled(model)

    def close(self) -> None:
        """Release pool processes and shared segments."""


class SerialBackend(ExecutionBackend):
    """In-process execution: the same shard functions, run in order."""

    workers = 1

    def run_tasks(self, model, tasks: "list[ShardTask]") -> list:
        from repro.parallel import worker

        return [worker.execute(model, task.fn, task.payload) for task in tasks]


def _pool_context():
    # fork is preferred: workers inherit loaded modules and the trained
    # predictor caches for free.  worker_init sanitizes what must not
    # be inherited (obs session, trace recorder, backend).
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _strip_scratch(model) -> None:
    """Remove per-process mutable scratch before sharing a model.

    Workers see shared arrays read-only; these buffers are written in
    place on the hot path and regenerate lazily per process.
    """
    named_modules = getattr(model, "named_modules", None)
    if named_modules is None:
        return
    for _name, module in named_modules():
        engine = getattr(module, "engine", None)
        if engine is None:
            continue
        for attr in (
            "_volt_buf", "_gain_sum_aa", "_gain_sum_ai", "_gain_rows",
            "_cal_amax", "_stream_ws", "_plane_ws",
            "_packed_codes_buf", "_expand_codes_buf",
        ):
            engine.__dict__.pop(attr, None)
        predictor = getattr(engine, "predictor", None)
        if predictor is not None and hasattr(predictor, "__dict__"):
            predictor.__dict__.pop("_ws_buf", None)


def _merge_blob(model, blob: dict) -> None:
    """Fold one worker task's telemetry into the parent (shard order)."""
    from repro.obs import runtime as _runtime
    from repro.obs.metrics import REGISTRY
    from repro.xbar.perf import PerfCounters, iter_engines

    perf = blob.get("perf") or {}
    guard = blob.get("guard") or {}
    pulses = blob.get("pulses") or {}
    if model is not None and (perf or guard or pulses):
        engines = dict(iter_engines(model))
        for layer, fields_ in perf.items():
            engine = engines.get(layer)
            if engine is not None:
                engine.perf.merge(PerfCounters(**fields_))
        for layer, trips in guard.items():
            engine = engines.get(layer)
            if engine is not None:
                engine._guard_trips += trips
        for layer, delta in pulses.items():
            engine = engines.get(layer)
            if engine is not None and hasattr(engine, "pulse_count"):
                engine.pulse_count += delta
    state = blob.get("metrics")
    if state:
        REGISTRY.merge_state(state)
    series = blob.get("timeseries")
    if series:
        # Ring-buffer merges are order-independent by construction
        # (per-bucket combine operators), so unlike the P² replay above
        # this fold would be correct in any order — shard order is just
        # the convention of this path.
        from repro.obs.live import TIMESERIES

        TIMESERIES.merge_state(series)
    for event_type, payload in blob.get("events") or ():
        _runtime.event(event_type, **payload)


class ProcessBackend(ExecutionBackend):
    """Persistent process pool over shared-memory model snapshots."""

    def __init__(self, workers: int, policy: "QueuePolicy | None" = None):
        if workers < 2:
            raise ValueError(f"ProcessBackend needs >= 2 workers, got {workers}")
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None
        self._serial = SerialBackend()
        # Strong refs keep id(model) stable for the cache lifetime; the
        # map is bounded by the handful of models a run touches and is
        # emptied by invalidate()/close().
        self._handles: dict[int, tuple[object, shm.SharedHandle]] = {}
        self._broken = False
        #: The scheduler.  Persistent with the backend, so its per-fn
        #: latency EWMA survives across maps (warm pools live for the
        #: whole process — see ``_POOLED``).
        self.queue = WorkQueue(workers, policy=policy)
        # Serving lanes call run_tasks from multiple threads: pool/share
        # setup and telemetry merging need mutual exclusion (the P²
        # histogram replay in _merge_blob is stateful).
        self._setup_lock = threading.RLock()
        self._merge_lock = threading.Lock()

    # -- pool / share management ---------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            from repro.parallel import worker

            # Start the shared-memory resource tracker *before* forking:
            # forked workers must inherit the parent's tracker, or each
            # would lazily spawn its own on first segment attach and
            # later report the parent-unlinked segments as leaks.
            try:  # pragma: no cover - absent only without shared_memory
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except (ImportError, OSError):
                pass
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=_pool_context(),
                initializer=worker.worker_init,
            )
        return self._pool

    def _share_model(self, model) -> shm.SharedHandle:
        cached = self._handles.get(id(model))
        if cached is not None and cached[0] is model:
            return cached[1]
        _strip_scratch(model)
        handle = shm.share(model)
        self._handles[id(model)] = (model, handle)
        return handle

    def invalidate(self, model) -> None:
        cached = self._handles.pop(id(model), None)
        if cached is not None:
            shm.release(cached[1])
        # A directly-constructed backend may coexist with pooled ones
        # holding their own snapshot of the same model.
        _invalidate_pooled(model)

    def close(self) -> None:
        # Release segments first and one-by-one: a broken pool must not
        # keep /dev/shm populated because its shutdown raised.
        for _model, handle in list(self._handles.values()):
            try:
                shm.release(handle)
            except Exception:  # pragma: no cover - unlink is best-effort
                logger.debug("shm release failed during close", exc_info=True)
        self._handles.clear()
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- execution ------------------------------------------------------
    def _mark_broken(self, exc: BaseException) -> None:
        self._broken = True
        # BrokenProcessPool's own message rarely says *why* the worker
        # died; surface the whole cause chain so CI logs show it.
        chain, link = [], exc
        while link is not None and len(chain) < 8:
            chain.append(f"{type(link).__name__}: {link}")
            link = link.__cause__ or link.__context__
        detail = " <- caused by ".join(chain)
        logger.warning(
            "parallel worker failure, falling back to serial: %s",
            detail,
            exc_info=exc,
        )
        warnings.warn(
            f"parallel backend disabled after worker failure ({detail}); "
            "continuing serially",
            RuntimeWarning,
            stacklevel=3,
        )
        # A broken backend must not linger as a warm pool: evict it so
        # the next parallel_backend()/configure() entry forks a fresh
        # one, and unlink its shm segments now rather than at interpreter
        # exit (close() below releases handles before pool teardown).
        _evict_pooled(self)
        try:
            self.close()
        except Exception:  # pragma: no cover - teardown is best-effort
            pass

    def run_tasks(self, model, tasks: "list[ShardTask]") -> list:
        if not tasks:
            return []
        if self._broken or not shm.HAVE_SHM:
            return self._serial.run_tasks(model, tasks)
        from repro.obs import runtime as _runtime
        from repro.parallel import worker

        capture = _runtime.active() is not None
        try:
            with self._setup_lock:
                handle = self._share_model(model) if model is not None else None
                pool = self._ensure_pool()

            def submit(indices):
                group = [(tasks[i].fn, tasks[i].payload) for i in indices]
                return pool.submit(
                    worker.remote_execute_many, handle, group, capture
                )

            outcomes = self.queue.run(submit, tasks)
        except Exception as exc:
            # Worker crash, pickling failure, shm exhaustion, or a
            # deterministic task error: re-run serially.  Task errors
            # then re-raise in-process with a usable traceback, chained
            # to the pool-side exception so neither context is lost.
            self._mark_broken(exc)
            try:
                return self._serial.run_tasks(model, tasks)
            except Exception as serial_exc:
                raise serial_exc from exc
        results = []
        with self._merge_lock:
            for result, blob in outcomes:  # merged strictly in shard order
                _merge_blob(model, blob)
                results.append(result)
        if capture:
            summary = self.queue.last
            _runtime.event(
                "parallel_map",
                fn=tasks[0].fn,
                shards=len(tasks),
                workers=self.workers,
            )
            _runtime.event(
                "queue_map",
                fn=tasks[0].fn,
                items=len(tasks),
                tasks=summary.get("tasks", 0),
                steals=summary.get("steals", 0),
                resubmits=summary.get("resubmits", 0),
                mode=self.queue.policy.mode,
                workers=self.workers,
            )
        return results


# ----------------------------------------------------------------------
# Process-global backend selection.
# ----------------------------------------------------------------------

_ACTIVE: ExecutionBackend = SerialBackend()


def get_backend() -> ExecutionBackend:
    """The backend batch-axis operations currently dispatch through."""
    return _ACTIVE


def set_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Install ``backend``; returns the previous one (for restoring)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = backend
    return previous


def resolve_workers(workers: int) -> int:
    """Map the CLI convention to a concrete count (0 = cpu_count - 1)."""
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return max(1, (os.cpu_count() or 2) - 1)
    return workers


#: Warm worker pools keyed by worker count.  ``parallel_backend`` and
#: ``configure`` draw from here instead of forking a fresh pool per
#: entry, so a long-lived caller (the serving event loop, a pytest
#: session) can enter/exit repeatedly without paying a refork + shm
#: re-share each time.  Closed only by :func:`shutdown` (atexit).
_POOLED: dict[int, "ProcessBackend"] = {}


def _invalidate_pooled(model) -> None:
    """Drop every pooled backend's shared snapshot of ``model``."""
    for backend in _POOLED.values():
        cached = backend._handles.pop(id(model), None)
        if cached is not None:
            shm.release(cached[1])


def _evict_pooled(backend: "ProcessBackend") -> None:
    """Remove ``backend`` from the warm-pool map (broken-pool cleanup)."""
    for count, pooled in list(_POOLED.items()):
        if pooled is backend:
            del _POOLED[count]


def _pooled_backend(count: int) -> "ProcessBackend":
    """A warm ``ProcessBackend`` for ``count`` workers (replace if broken)."""
    backend = _POOLED.get(count)
    if backend is not None and not backend._broken:
        return backend
    if backend is not None:
        backend.close()
    backend = ProcessBackend(count)
    _POOLED[count] = backend
    return backend


def configure(workers: int) -> ExecutionBackend:
    """Install the process-global backend for a worker count.

    ``1`` (or a resolved ``0`` on a single-core machine) keeps the
    serial backend.  Inside a pool worker this is a no-op: workers
    always execute serially.
    """
    global _ACTIVE
    if _IN_WORKER:
        return _ACTIVE
    count = resolve_workers(workers)
    if (
        isinstance(_ACTIVE, ProcessBackend)
        and _ACTIVE.workers == count
        and not _ACTIVE._broken
    ):
        return _ACTIVE
    _ACTIVE = SerialBackend() if count <= 1 else _pooled_backend(count)
    return _ACTIVE


def shutdown() -> None:
    """Close every pool (active + warm) and unlink shared segments."""
    global _ACTIVE
    if isinstance(_ACTIVE, ProcessBackend):
        _ACTIVE.close()
        _ACTIVE = SerialBackend()
    for backend in _POOLED.values():
        backend.close()
    _POOLED.clear()
    shm.release_all()


@contextlib.contextmanager
def parallel_backend(workers: int):
    """Temporarily install a backend (tests and library callers).

    ``with parallel_backend(2): ...`` runs the body's batch operations
    on a 2-worker pool, then restores the previous backend.  The pool
    itself is pooled (see :data:`_POOLED`): re-entering with the same
    worker count reuses the warm workers and their shared-memory model
    cache instead of reforking, which makes the context safe to open
    and close repeatedly inside a long-lived event loop.  Pools are
    torn down by :func:`shutdown` (registered atexit).
    """
    count = resolve_workers(workers)
    backend: ExecutionBackend = (
        SerialBackend() if count <= 1 else _pooled_backend(count)
    )
    previous = set_backend(backend)
    try:
        yield backend
    finally:
        set_backend(previous)


atexit.register(shutdown)
