"""Neural-network library built on :mod:`repro.autograd`.

Provides the layer zoo needed by the paper's models (ResNet-10/18/20/32)
plus the plumbing (parameter management, train/eval modes, state dicts)
that the training substrate and the crossbar functional simulator rely
on.  Layers follow the PyTorch naming so readers of the paper's original
code base can map one-to-one.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn import functional
from repro.nn.resnet import (
    BasicBlock,
    ResNet,
    resnet_cifar,
    resnet10,
    resnet18,
    resnet20,
    resnet32,
    build_model,
)

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Identity",
    "Dropout",
    "functional",
    "BasicBlock",
    "ResNet",
    "resnet_cifar",
    "resnet10",
    "resnet18",
    "resnet20",
    "resnet32",
    "build_model",
]
