#!/usr/bin/env python
"""Hot-path performance benchmark: BENCH_14_hotpath.json.

Times the analog MVM hot path before/after the stacked-stream rework:

* micro-kernel — ``CrossbarEngine.matvec`` on one tiled layer, with the
  reference per-stream kernel + legacy GENIEx blocks vs. the vectorized
  stacked-stream kernel + blocked-GEMM GENIEx evaluation (both pairs
  are bit-identical; only wall time differs);
* end-to-end — a non-ideal ResNet-20 forward pass under the same two
  configurations;
* engine cache — repeated ``convert_to_hardware`` with a cold vs. warm
  content-addressed cache, showing hits eliminate reprogramming;
* a perf-counter snapshot of the vectorized end-to-end run.

Scale is controlled by ``REPRO_BENCH_PROFILE`` (tiny | small | default;
this script defaults to ``tiny`` so it stays a CI smoke step).  Results
are written to ``BENCH_14_hotpath.json`` at the repo root — no timing
assertions here; trend tracking happens across commits.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.autograd import Tensor, no_grad  # noqa: E402
from repro.nn.resnet import resnet20  # noqa: E402
from repro.obs.sink import runtime_stamp  # noqa: E402
from repro.xbar.engine_cache import EngineCache, config_digest  # noqa: E402
from repro.xbar.perf import iter_engines, perf_report, reset_perf  # noqa: E402
from repro.xbar.presets import crossbar_preset, load_or_train_geniex  # noqa: E402
from repro.xbar.simulator import CrossbarEngine, convert_to_hardware  # noqa: E402

PRESET = "32x32_100k"

PROFILES = {
    # (matvec batch, resnet batch, timing repeats)
    "tiny": (64, 4, 3),
    "small": (256, 8, 3),
    "default": (512, 16, 5),
}


def profile_name() -> str:
    return os.environ.get("REPRO_BENCH_PROFILE", "tiny")


def best_of(fn, repeats: int) -> float:
    """Minimum wall time over ``repeats`` runs (least-noise estimator)."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def set_modes(engines, geniex, kernel: str, block_mode: str) -> None:
    for engine in engines:
        engine.kernel = kernel
    geniex.block_mode = block_mode


def bench_micro_matvec(config, geniex, batch: int, repeats: int) -> dict:
    rng = np.random.default_rng(0)
    weight = rng.normal(0, 0.3, size=(32, 72)).astype(np.float32)
    engine = CrossbarEngine(weight, config, geniex, np.random.default_rng(1))
    x = rng.random((batch, 72)).astype(np.float32)

    set_modes([engine], geniex, "reference", "legacy")
    before = best_of(lambda: engine.matvec(x), repeats)
    set_modes([engine], geniex, "vectorized", "gemm")
    after = best_of(lambda: engine.matvec(x), repeats)
    return {
        "shape": {"weight": [32, 72], "batch": batch},
        "reference_seconds": before,
        "vectorized_seconds": after,
        "speedup": before / after if after > 0 else float("inf"),
    }


def bench_resnet_forward(config, geniex, batch: int, repeats: int) -> dict:
    model = resnet20(num_classes=10, width=8)
    model.eval()
    hardware = convert_to_hardware(
        model, config, predictor=geniex, rng=np.random.default_rng(2),
        engine_cache=False,
    )
    engines = [engine for _name, engine in iter_engines(hardware)]
    x = Tensor(np.random.default_rng(0).random((batch, 3, 16, 16)).astype(np.float32))

    with no_grad():
        set_modes(engines, geniex, "reference", "legacy")
        before = best_of(lambda: hardware(x), repeats)
        set_modes(engines, geniex, "vectorized", "gemm")
        reset_perf(hardware)
        after = best_of(lambda: hardware(x), repeats)
    report = perf_report(hardware)
    return {
        "model": "resnet20-w8",
        "input": [batch, 3, 16, 16],
        "reference_seconds": before,
        "vectorized_seconds": after,
        "speedup": before / after if after > 0 else float("inf"),
        "perf_counters": report.total.as_dict(),
        "layers": len(report.layers),
    }


def bench_engine_cache(config, geniex) -> dict:
    model = resnet20(num_classes=10, width=8)
    model.eval()
    cache = EngineCache()

    start = time.perf_counter()
    convert_to_hardware(
        model, config, predictor=geniex, rng=np.random.default_rng(3),
        engine_cache=cache,
    )
    cold = time.perf_counter() - start
    start = time.perf_counter()
    convert_to_hardware(
        model, config, predictor=geniex, rng=np.random.default_rng(3),
        engine_cache=cache,
    )
    warm = time.perf_counter() - start
    return {
        "cold_convert_seconds": cold,
        "warm_convert_seconds": warm,
        "speedup": cold / warm if warm > 0 else float("inf"),
        "cache_stats": cache.stats.as_dict(),
    }


def main() -> int:
    profile = profile_name()
    if profile not in PROFILES:
        print(f"unknown REPRO_BENCH_PROFILE {profile!r}; use one of {sorted(PROFILES)}")
        return 2
    matvec_batch, resnet_batch, repeats = PROFILES[profile]
    config = crossbar_preset(PRESET)
    geniex = load_or_train_geniex(config)

    print(f"[bench_perf] profile={profile} preset={PRESET}")
    micro = bench_micro_matvec(config, geniex, matvec_batch, repeats)
    print(
        f"[bench_perf] micro matvec: {micro['reference_seconds'] * 1e3:.1f} ms -> "
        f"{micro['vectorized_seconds'] * 1e3:.1f} ms  ({micro['speedup']:.2f}x)"
    )
    e2e = bench_resnet_forward(config, geniex, resnet_batch, repeats)
    print(
        f"[bench_perf] resnet20 forward: {e2e['reference_seconds']:.2f} s -> "
        f"{e2e['vectorized_seconds']:.2f} s  ({e2e['speedup']:.2f}x)"
    )
    cache = bench_engine_cache(config, geniex)
    print(
        f"[bench_perf] convert_to_hardware: cold {cache['cold_convert_seconds']:.2f} s, "
        f"warm {cache['warm_convert_seconds']:.3f} s  ({cache['speedup']:.0f}x, "
        f"{cache['cache_stats']['hits']} hits / {cache['cache_stats']['misses']} misses)"
    )

    # Provenance stamp shared with --obs run manifests: git sha, numpy,
    # python, platform, timestamp — plus the preset's config digest and
    # the deterministic seeds used above, so bench points are
    # attributable across commits.
    payload = runtime_stamp(
        extra={
            "bench": "hotpath",
            "profile": profile,
            "preset": PRESET,
            "config_digest": config_digest(config),
            "seeds": {"micro": [0, 1], "resnet": [0, 2], "cache": [3]},
        }
    )
    payload.update(
        {
            "micro_matvec": micro,
            "resnet20_forward": e2e,
            "engine_cache": cache,
        }
    )
    out_path = REPO_ROOT / "BENCH_14_hotpath.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_perf] wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
