"""Finite-difference verification of autograd gradients.

Used by the test suite to certify every operation and layer before it
is trusted inside the attack pipeline (PGD is only as strong as the
input gradients it receives).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-3,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function mapping the tensors in ``inputs`` to a Tensor output.
    inputs:
        All tensor arguments of ``fn``.
    index:
        Which argument to differentiate against.
    epsilon:
        Perturbation step (float64 recommended for the probed tensor).
    """
    target = inputs[index]
    base = target.data.astype(np.float64).copy()
    grad = np.zeros_like(base)
    it = np.nditer(base, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = base[idx]

        target.data[idx] = original + epsilon
        plus = float(fn(*inputs).data.sum())
        target.data[idx] = original - epsilon
        minus = float(fn(*inputs).data.sum())
        target.data[idx] = original

        grad[idx] = (plus - minus) / (2.0 * epsilon)
        it.iternext()
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-2,
    rtol: float = 1e-2,
    epsilon: float = 1e-3,
) -> None:
    """Assert analytic gradients of ``fn`` match finite differences.

    Raises ``AssertionError`` with a per-input report on mismatch.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = fn(*inputs)
    output.sum().backward()

    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad
        assert analytic is not None, f"input {i} received no gradient"
        numeric = numerical_gradient(fn, inputs, i, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
