"""Bit-slicing of weights and input streaming (PUMA mapping, step iii).

NVM cells hold only a few bits, and DACs drive only a few bits per
step, so the functional simulator decomposes:

* a ``weight_bits``-bit unsigned weight integer into ``weight_bits /
  slice_bits`` *slices*, each programmed into its own crossbar column
  group, and
* an ``input_bits``-bit unsigned activation integer into ``input_bits /
  stream_bits`` *streams*, each applied as one analog MVM.

Partial results are combined with shift-and-add:

``dot(x, w) = sum_{s,t} 2^(s*slice_bits + t*stream_bits) dot(d_t, w_s)``

Signed values are handled one level up (the engine splits weights into
positive/negative arrays — the differential-crossbar scheme).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BitSliceConfig:
    """Quantization and slicing parameters of the functional simulator.

    Defaults (8-bit activations in 4-bit streams, 6-bit weights in 2-bit
    slices) are a laptop-scale rendition of PUMA's 16-bit/2-bit scheme:
    the error structure (per-slice analog error, shift-add recombination)
    is identical, only the precision budget is smaller.
    """

    input_bits: int = 8
    stream_bits: int = 4
    weight_bits: int = 6
    slice_bits: int = 2

    def __post_init__(self):
        if self.input_bits % self.stream_bits != 0:
            raise ValueError(
                f"stream_bits {self.stream_bits} must divide input_bits {self.input_bits}"
            )
        if self.weight_bits % self.slice_bits != 0:
            raise ValueError(
                f"slice_bits {self.slice_bits} must divide weight_bits {self.weight_bits}"
            )

    @property
    def num_streams(self) -> int:
        return self.input_bits // self.stream_bits

    @property
    def num_slices(self) -> int:
        return self.weight_bits // self.slice_bits

    @property
    def input_levels(self) -> int:
        return 2**self.input_bits

    @property
    def weight_levels(self) -> int:
        return 2**self.weight_bits

    @property
    def stream_levels(self) -> int:
        return 2**self.stream_bits

    @property
    def slice_levels(self) -> int:
        return 2**self.slice_bits


def quantize_unsigned(
    values: np.ndarray, bits: int, scale: float
) -> np.ndarray:
    """Quantize non-negative floats to ``bits``-bit integers given scale.

    ``scale`` maps integer 1 to physical value ``scale``; values are
    rounded and clipped to [0, 2**bits - 1].
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    q = np.rint(np.asarray(values) / scale)
    return np.clip(q, 0, 2**bits - 1).astype(np.int64)


def slice_bits_lsb_first(values: np.ndarray, total_bits: int, chunk_bits: int) -> list[np.ndarray]:
    """Split unsigned integers into chunk_bits-wide slices, LSB first."""
    values = np.asarray(values, dtype=np.int64)
    if values.size and (values.min() < 0 or values.max() >= 2**total_bits):
        raise ValueError(f"values exceed {total_bits}-bit unsigned range")
    mask = (1 << chunk_bits) - 1
    return [
        (values >> (k * chunk_bits)) & mask
        for k in range(total_bits // chunk_bits)
    ]


def slice_weights(weight_ints: np.ndarray, config: BitSliceConfig) -> list[np.ndarray]:
    """Split unsigned weight integers into slices (LSB first).

    Slice ``s`` has significance ``2**(s * slice_bits)``.
    """
    return slice_bits_lsb_first(weight_ints, config.weight_bits, config.slice_bits)


def stream_inputs(input_ints: np.ndarray, config: BitSliceConfig) -> list[np.ndarray]:
    """Split unsigned activation integers into streams (LSB first).

    Stream ``t`` has significance ``2**(t * stream_bits)``.
    """
    return slice_bits_lsb_first(input_ints, config.input_bits, config.stream_bits)


def reassemble(slices: list[np.ndarray], chunk_bits: int) -> np.ndarray:
    """Inverse of slicing: shift-and-add LSB-first chunks back together."""
    out = np.zeros_like(np.asarray(slices[0], dtype=np.int64))
    for k, chunk in enumerate(slices):
        out = out + (np.asarray(chunk, dtype=np.int64) << (k * chunk_bits))
    return out
