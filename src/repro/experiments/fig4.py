"""Fig. 4: non-adaptive white-box PGD accuracy vs epsilon.

The paper's strongest non-adaptive threat: the attacker has the exact
weights but differentiates the *digital* model.  Baseline collapses to
0 beyond eps=2/255; the high-NF crossbars keep recovering accuracy at
small eps.
"""

from __future__ import annotations

from repro.core.evaluation import CellResult, HardwareLab
from repro.experiments.config import DEFENSES_BY_TASK, ExperimentResult, paper_eps, traced_experiment
from repro.experiments.shared import AttackFactory
from repro.xbar.presets import preset_names

PAPER_EPS_GRID = (0.5, 1, 2, 4)


@traced_experiment("fig4")
def run(
    lab: HardwareLab,
    tasks: list[str] | None = None,
    eps_grid: tuple[float, ...] = PAPER_EPS_GRID,
    factory: AttackFactory | None = None,
) -> ExperimentResult:
    """Regenerate the Fig. 4 epsilon sweeps."""
    tasks = tasks or ["cifar10", "cifar100"]
    factory = factory or AttackFactory(lab)
    result = ExperimentResult(
        name="Fig 4",
        headline="White-box PGD accuracy vs epsilon (paper units of /255)",
    )
    for task in tasks:
        result.rows.append(f"--- {task} ---")
        victim = lab.victim(task)
        cells: list[CellResult] = []
        for k in eps_grid:
            eps = paper_eps(task, k)
            x_adv = factory.whitebox_pgd(task, victim, eps)
            cell = lab.attack_cell(
                task,
                f"White Box PGD eps={k}/255",
                eps,
                x_adv,
                preset_names(),
                DEFENSES_BY_TASK[task],
            )
            cells.append(cell)
            result.rows.append(cell.format_row())
        result.data[task] = cells
    return result
