"""Extension benches: composition, chip variation, energy (paper §I/§V).

These quantify the paper's Discussion-section conjectures; no table
counterpart exists, so only direction-of-effect is asserted.
"""

from repro.experiments import extensions
from repro.experiments.config import bench_profile as _profile


def bench_ext_composition(benchmark, lab):
    iterations = 3 if _profile() == "tiny" else 15
    result = benchmark.pedantic(
        lambda: extensions.run_composition(lab, iterations=iterations),
        rounds=1,
        iterations=1,
    )
    result.print()
    study = result.data["study"]
    # Composition should not be weaker than the bare digital victim.
    assert study.accuracies["crossbar+sap"] >= study.accuracies["digital"] - 0.10


def bench_ext_chip_variation(benchmark, lab):
    profile = _profile()
    iterations = 3 if profile == "tiny" else 10
    sigmas = (0.0, 0.05) if profile in ("tiny", "small") else (0.0, 0.05, 0.10)
    result = benchmark.pedantic(
        lambda: extensions.run_chip_variation(lab, iterations=iterations, sigmas=sigmas),
        rounds=1,
        iterations=1,
    )
    result.print()
    studies = result.data["studies"]
    # sigma=0 chips are identical: zero transfer penalty by construction.
    assert abs(studies[0].transfer_penalty) < 1e-9


def bench_ext_energy(benchmark, lab):
    result = benchmark.pedantic(lambda: extensions.run_energy(lab), rounds=1, iterations=1)
    result.print()
    estimate = result.data["estimate"]
    # The paper's premise: in-situ MVM wins on energy at inference batch 1.
    assert estimate.energy_ratio > 1.0
