"""Unit tests for the layer zoo and Module infrastructure."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
)


class TestModuleInfrastructure:
    def test_parameter_registration(self):
        layer = Linear(3, 2)
        names = [n for n, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]

    def test_nested_module_names(self):
        net = Sequential(Linear(3, 4), ReLU(), Linear(4, 2))
        names = [n for n, _ in net.named_parameters()]
        assert "0.weight" in names and "2.bias" in names

    def test_train_eval_propagates(self):
        net = Sequential(Linear(2, 2), BatchNorm2d(2))
        net.eval()
        assert all(not m.training for m in net.children())
        net.train()
        assert all(m.training for m in net.children())

    def test_zero_grad_clears_all(self):
        net = Linear(3, 2)
        out = net(Tensor(np.ones((1, 3)), requires_grad=True))
        out.sum().backward()
        assert net.weight.grad is not None
        net.zero_grad()
        assert net.weight.grad is None

    def test_state_dict_roundtrip(self):
        net = Sequential(Linear(3, 4), Linear(4, 2))
        state = net.state_dict()
        net2 = Sequential(Linear(3, 4, rng=np.random.default_rng(9)), Linear(4, 2))
        net2.load_state_dict(state)
        x = Tensor(np.ones((2, 3), dtype=np.float32))
        np.testing.assert_allclose(net(x).data, net2(x).data)

    def test_load_state_dict_rejects_missing_keys(self):
        net = Linear(3, 2)
        with pytest.raises(KeyError):
            net.load_state_dict({"weight": net.weight.data})

    def test_load_state_dict_rejects_bad_shape(self):
        net = Linear(3, 2)
        state = net.state_dict()
        state["weight"] = np.zeros((5, 5), dtype=np.float32)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_get_and_set_submodule(self):
        net = Sequential(Linear(3, 4), ReLU())
        assert isinstance(net.get_submodule("1"), ReLU)
        net.set_submodule("1", Identity())
        assert isinstance(net.get_submodule("1"), Identity)

    def test_set_submodule_unknown_path_raises(self):
        net = Sequential(Linear(3, 4))
        with pytest.raises(KeyError):
            net.set_submodule("7", Identity())

    def test_num_parameters(self):
        assert Linear(3, 2).num_parameters() == 3 * 2 + 2

    def test_sequential_iteration_and_indexing(self):
        net = Sequential(Linear(2, 2), ReLU())
        assert len(net) == 2
        assert isinstance(net[1], ReLU)
        assert len(list(iter(net))) == 2


class TestLinear:
    def test_forward_matches_manual(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4)).astype(np.float32)
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-5)

    def test_no_bias_option(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert layer(Tensor(np.zeros((1, 4)))).data.max() == 0.0

    def test_gradients(self, rng):
        layer = Linear(3, 2, rng=rng)
        layer.weight = Parameter(layer.weight.data.astype(np.float64))
        layer.bias = Parameter(layer.bias.data.astype(np.float64))
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True, dtype=np.float64)
        check_gradients(lambda a: layer(a), [x])


class TestBatchNorm:
    def test_train_normalizes_batch(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(2.0, 3.0, size=(8, 3, 4, 4)).astype(np.float32))
        out = bn(x)
        assert abs(float(out.data.mean())) < 1e-4
        assert abs(float(out.data.std()) - 1.0) < 1e-2

    def test_running_stats_update(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(rng.normal(1.0, 1.0, size=(16, 2, 3, 3)).astype(np.float32))
        bn(x)
        assert not np.allclose(bn.running_mean, 0.0)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(size=(8, 2, 3, 3)).astype(np.float32))
        for _ in range(10):
            bn(x)
        bn.eval()
        out1 = bn(x)
        out2 = bn(x)
        np.testing.assert_allclose(out1.data, out2.data)

    def test_affine_parameters_trainable(self):
        bn = BatchNorm2d(2)
        params = dict(bn.named_parameters())
        assert set(params) == {"weight", "bias"}


class TestPoolingAndShape:
    def test_avg_pool(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = AvgPool2d(2)(x)
        assert out.shape == (1, 1, 2, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = MaxPool2d(2)(x)
        np.testing.assert_allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 5, 5)).astype(np.float32)
        out = GlobalAvgPool2d()(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)), rtol=1e-5)

    def test_flatten(self):
        out = Flatten()(Tensor(np.zeros((2, 3, 4, 5))))
        assert out.shape == (2, 60)

    def test_max_pool_gradient_goes_to_max(self):
        x = Tensor(
            np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float64),
            requires_grad=True,
            dtype=np.float64,
        )
        MaxPool2d(2)(x).sum().backward()
        np.testing.assert_allclose(x.grad[0, 0], [[0, 0], [0, 1.0]])


class TestDropout:
    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(4, 4)).astype(np.float32)
        np.testing.assert_allclose(layer(Tensor(x)).data, x)

    def test_train_mode_zeroes_and_rescales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((1000,), dtype=np.float32)
        out = layer(Tensor(x)).data
        zero_fraction = float((out == 0).mean())
        assert 0.4 < zero_fraction < 0.6
        # Kept entries are rescaled by 1/keep.
        assert np.allclose(out[out != 0], 2.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestReprs:
    @pytest.mark.parametrize(
        "module, token",
        [
            (Linear(2, 3), "Linear"),
            (Conv2d(1, 2, 3), "Conv2d"),
            (BatchNorm2d(4), "BatchNorm2d"),
            (ReLU(), "ReLU"),
            (Dropout(0.3), "Dropout"),
        ],
    )
    def test_repr_contains_class_token(self, module, token):
        assert token in repr(module)
