"""SLO error budgets, streaming anomaly detection, and event schemas.

The observe-then-heal loop is only trustworthy if its bookkeeping is:
budget arithmetic must match the declared objectives exactly, a
violation episode must emit exactly one event (re-arming only after
real recovery), the detector must not cry wolf (min-points gate,
consecutive requirement, cooldown hysteresis), and everything the live
stack emits must round-trip the JSONL sink and validate against the
event schema catalog.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import runtime as _runtime
from repro.obs.anomaly import (
    Anomaly,
    DetectorConfig,
    HealthWatcher,
    robust_zscore,
)
from repro.obs.live import TIMESERIES, TimeSeriesStore
from repro.obs.schema import validate_event
from repro.obs.sink import RunWriter, read_events
from repro.obs.slo import REARM_BUDGET, Objective, SLOSpec, SLOTracker

pytestmark = [pytest.mark.fast]


@pytest.fixture()
def capture():
    """Buffer obs events in memory for the duration of one test."""
    session = _runtime.begin_worker_capture()
    yield session
    _runtime.end_worker_capture()


@pytest.fixture(autouse=True)
def _clean_timeseries():
    """SLO/anomaly paths record into the global live store; isolate it."""
    TIMESERIES.clear()
    yield
    TIMESERIES.clear()


# ----------------------------------------------------------------------
# SLOSpec / Objective arithmetic
# ----------------------------------------------------------------------

def test_slo_spec_validation_and_enablement() -> None:
    assert not SLOSpec().enabled
    assert SLOSpec(p99_ms=10.0).enabled
    assert SLOSpec(max_reject_rate=0.1).enabled
    with pytest.raises(ValueError):
        SLOSpec(target=1.0)
    with pytest.raises(ValueError):
        SLOSpec(target=0.0)
    with pytest.raises(ValueError):
        SLOSpec(window=0)


def test_objective_budget_arithmetic() -> None:
    from collections import deque

    objective = Objective(name="latency", allowed_rate=0.1, outcomes=deque(maxlen=100))
    for _ in range(95):
        objective.observe(bad=False)
    for _ in range(5):
        objective.observe(bad=True)
    budget = objective.budget()
    assert budget["window"] == 100
    assert budget["bad"] == 5
    assert budget["allowed"] == pytest.approx(10.0)
    assert budget["budget_remaining"] == pytest.approx(0.5)
    assert budget["burn_rate"] == pytest.approx(0.5)  # burning at half pace


def test_zero_tolerance_objective_exhausts_on_any_bad_event() -> None:
    from collections import deque

    objective = Objective(name="rejects", allowed_rate=0.0, outcomes=deque(maxlen=16))
    objective.observe(bad=False)
    assert objective.budget()["budget_remaining"] == 1.0
    objective.observe(bad=True)
    assert objective.budget()["budget_remaining"] == 0.0
    assert objective.budget()["burn_rate"] == 1.0


# ----------------------------------------------------------------------
# SLOTracker: episodes, re-arm, burn series
# ----------------------------------------------------------------------

def test_latency_violation_fires_once_per_episode_and_rearms(capture) -> None:
    # target 0.5 over a window of 8: >4 misses exhaust the budget.
    tracker = SLOTracker("fp", SLOSpec(p99_ms=10.0, target=0.5, window=8))
    for i in range(8):
        tracker.observe_latency(100.0, t=float(i))  # every request misses
    assert tracker.violations == 1
    events = [e for e in capture.events if e[0] == "slo_violation"]
    assert len(events) == 1  # one episode, one event
    payload = events[0][1]
    assert payload["tenant"] == "fp"
    assert payload["objective"] == "latency"
    assert payload["budget_remaining"] == 0.0
    assert tracker.worst_budget() == 0.0

    # Recovery: fast requests displace the misses until the budget is
    # back above the re-arm threshold, then a relapse fires again.
    t = 8.0
    while tracker.budgets()["latency"]["budget_remaining"] < REARM_BUDGET:
        tracker.observe_latency(1.0, t=t)
        t += 1.0
    assert tracker.violations == 1  # recovery itself is not a violation
    while tracker.violations == 1:
        tracker.observe_latency(100.0, t=t)
        t += 1.0
    assert tracker.violations == 2
    assert len([e for e in capture.events if e[0] == "slo_violation"]) == 2


def test_violation_needs_a_minimum_window(capture) -> None:
    tracker = SLOTracker("fp", SLOSpec(p99_ms=10.0, target=0.5, window=256))
    for i in range(7):  # fewer than min(window, 8) outcomes: no verdict
        tracker.observe_latency(100.0, t=float(i))
    assert tracker.violations == 0
    tracker.observe_latency(100.0, t=7.0)
    assert tracker.violations == 1


def test_reject_objective_scores_completions_as_good(capture) -> None:
    tracker = SLOTracker("fp", SLOSpec(max_reject_rate=0.25, window=8))
    for i in range(6):
        tracker.observe_latency(1.0, t=float(i))  # completions
    for i in range(6, 9):
        tracker.observe_reject(t=float(i))
    assert tracker.violations == 1
    budgets = tracker.budgets()
    assert set(budgets) == {"rejects"}
    assert budgets["rejects"]["bad"] == 3
    # Burn-rate series feeds the live store for /metrics + repro top.
    assert "slo.burn.rejects.fp" in TIMESERIES


def test_tracker_without_objectives_is_inert(capture) -> None:
    tracker = SLOTracker("fp", SLOSpec())
    tracker.observe_latency(1e9, t=0.0)
    tracker.observe_reject(t=1.0)
    assert not tracker.enabled
    assert tracker.worst_budget() == 1.0
    assert tracker.violations == 0


# ----------------------------------------------------------------------
# robust z-score
# ----------------------------------------------------------------------

def test_robust_zscore_edge_cases() -> None:
    assert robust_zscore(5.0, []) == 0.0
    assert robust_zscore(5.0, [1.0]) == 0.0  # degenerate window
    assert robust_zscore(1.0, [1.0, 1.0, 1.0]) == 0.0  # no departure
    assert robust_zscore(2.0, [1.0, 1.0, 1.0]) == math.inf  # constant moved
    window = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert robust_zscore(3.0, window) == 0.0
    assert robust_zscore(6.0, window) == pytest.approx(3.0 / (1.4826 * 1.0))


# ----------------------------------------------------------------------
# HealthWatcher: gates, hysteresis, events
# ----------------------------------------------------------------------

def aggressive(**overrides) -> DetectorConfig:
    defaults = dict(
        z_threshold=4.0, ewma_step=0.5, min_points=4, consecutive=2, cooldown=4
    )
    defaults.update(overrides)
    return DetectorConfig(**defaults)


def test_watcher_flags_level_shift_after_consecutive_points(capture) -> None:
    watcher = HealthWatcher(store=TimeSeriesStore(), config=aggressive())
    for i in range(8):
        assert watcher.observe("sig", 1.0, t=float(i)) is None
    # First excursion starts the streak, the second flags.
    assert watcher.observe("sig", 50.0, t=8.0) is None
    anomaly = watcher.observe("sig", 50.0, t=9.0)
    assert isinstance(anomaly, Anomaly)
    assert anomaly.signal == "sig"
    assert anomaly.baseline == pytest.approx(1.0)
    assert anomaly.zscore == 1e9  # constant window: inf, capped for JSON
    events = [e for e in capture.events if e[0] == "anomaly"]
    assert len(events) == 1
    assert events[0][1]["signal"] == "sig"


def test_watcher_min_points_gate_blocks_early_verdicts() -> None:
    watcher = HealthWatcher(store=TimeSeriesStore(), config=aggressive(min_points=10))
    flags = [watcher.observe("sig", 1000.0 if i % 2 else 1.0, t=float(i)) is not None
             for i in range(10)]
    assert not any(flags)


def test_watcher_cooldown_yields_one_event_per_episode(capture) -> None:
    watcher = HealthWatcher(
        store=TimeSeriesStore(), config=aggressive(consecutive=1, cooldown=6)
    )
    for i in range(8):
        watcher.observe("sig", 1.0, t=float(i))
    flags = [
        watcher.observe("sig", 50.0, t=float(8 + i)) is not None for i in range(6)
    ]
    assert flags == [True, False, False, False, False, False]
    assert watcher.stats()["sig"]["flagged"] == 1
    assert len(watcher.anomalies) == 1


def test_watcher_broken_streak_resets() -> None:
    # z-score leg only: the EWMA leg would see the return-to-baseline
    # itself as a large relative step, which is correct but not what
    # this test pins.
    watcher = HealthWatcher(
        store=TimeSeriesStore(),
        config=aggressive(consecutive=2, ewma_step=1e9),
    )
    for i in range(8):
        watcher.observe("sig", 1.0, t=float(i))
    assert watcher.observe("sig", 50.0, t=8.0) is None   # streak = 1
    assert watcher.observe("sig", 1.0, t=9.0) is None    # resets
    assert watcher.observe("sig", 50.0, t=10.0) is None  # streak = 1 again
    assert watcher.stats()["sig"]["flagged"] == 0


def test_watcher_ewma_catches_ramp_the_zscore_misses() -> None:
    # A steady ramp keeps every point near the window median (finite
    # z) but the relative EWMA step sees the slope.
    config = aggressive(z_threshold=1e9, ewma_step=0.3, consecutive=1)
    watcher = HealthWatcher(store=TimeSeriesStore(), config=config)
    value, flagged = 1.0, False
    for i in range(16):
        value *= 1.4
        flagged = flagged or watcher.observe("sig", value, t=float(i)) is not None
    assert flagged


def test_watcher_per_signal_config_override() -> None:
    watcher = HealthWatcher(store=TimeSeriesStore(), config=aggressive())
    # A constant window scores inf for any departure, beating any finite
    # z threshold — so silence the overridden signal via its min-points
    # gate instead.
    watcher.configure("quiet", aggressive(min_points=10**6))
    for i in range(8):
        watcher.observe("quiet", 1.0, t=float(i))
        watcher.observe("loud", 1.0, t=float(i))
    for i in range(4):
        watcher.observe("quiet", 1e6, t=float(8 + i))
        watcher.observe("loud", 1e6, t=float(8 + i))
    assert watcher.stats()["quiet"]["flagged"] == 0
    assert watcher.stats()["loud"]["flagged"] >= 1


def test_watcher_records_into_the_live_store() -> None:
    store = TimeSeriesStore()
    watcher = HealthWatcher(store=store, config=aggressive())
    for i in range(5):
        watcher.observe("health.logit_mag.fp", float(i), t=float(i))
    assert store.series("health.logit_mag.fp").values() == [0.0, 1.0, 2.0, 3.0, 4.0]


# ----------------------------------------------------------------------
# Event schema round-trips through the JSONL sink
# ----------------------------------------------------------------------

def test_live_event_types_round_trip_the_sink_and_validate(tmp_path) -> None:
    writer = RunWriter(tmp_path / "run")
    writer.write_event(
        "request_trace",
        trace_id="req-0000002a",
        model="fp",
        batch_id=7,
        queued_us=120.5,
        infer_us=900.0,
        total_us=1020.5,
    )
    writer.write_event(
        "slo_violation",
        tenant="fp",
        objective="latency",
        burn_rate=2.5,
        budget_remaining=0.0,
        window=256,
    )
    writer.write_event(
        "anomaly",
        signal="health.logit_mag.fp",
        value=9.5,
        baseline=1.0,
        zscore=12.0,
        ewma_step=0.8,
    )
    writer.write_event("metrics_scrape", transport="http", series=42, bytes=1337)
    # The batch event carries the fan-in trace links of its members.
    writer.write_event(
        "serve_batch",
        model="fp",
        size=4,
        queue_depth=2,
        wait_us=100.0,
        infer_us=2000.0,
        lane=0,
        batch_id=7,
        traces=["req-0000002a"],
    )
    writer.close()

    events, partial = read_events(tmp_path / "run")
    assert partial == 0
    assert [e["type"] for e in events] == [
        "request_trace",
        "slo_violation",
        "anomaly",
        "metrics_scrape",
        "serve_batch",
    ]
    for event in events:
        assert validate_event(event) == []
    # The batch <-> request link survives the round trip.
    batch = events[-1]
    assert events[0]["trace_id"] in batch["traces"]
    assert events[0]["batch_id"] == batch["batch_id"]


def test_live_event_schemas_reject_malformed_records() -> None:
    assert validate_event({"t": 0.0, "type": "anomaly", "signal": "s"})
    assert validate_event(
        {"t": 0.0, "type": "slo_violation", "tenant": 3, "objective": "latency",
         "burn_rate": 1.0, "budget_remaining": 0.0, "window": 8}
    )
    assert validate_event(
        {"t": 0.0, "type": "metrics_scrape", "transport": "tcp", "series": 1,
         "bytes": True}  # bool is not an int here
    )
    assert validate_event({"t": 0.0, "type": "request_trace"})


def test_emitted_events_validate_against_the_schema(capture) -> None:
    """What the SLO tracker and watcher actually emit passes validation."""
    tracker = SLOTracker("fp", SLOSpec(p99_ms=1.0, target=0.5, window=8))
    for i in range(8):
        tracker.observe_latency(100.0, t=float(i))
    watcher = HealthWatcher(
        store=TimeSeriesStore(), config=aggressive(consecutive=1)
    )
    for i in range(8):
        watcher.observe("sig", 1.0, t=float(i))
    watcher.observe("sig", 50.0, t=8.0)
    assert {name for name, _ in capture.events} >= {"slo_violation", "anomaly"}
    for name, payload in capture.events:
        record = json.loads(json.dumps({"t": 0.0, "type": name, **payload}))
        assert validate_event(record) == []
