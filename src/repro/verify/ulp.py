"""ULP-distance measurement between float64 arrays.

The differential harness compares fast paths against the oracle to
*exact* equality (0 ULP; see the tolerance policy in
:mod:`repro.verify.oracle`), but reports distances in ULPs so a failure
says *how far* apart two paths drifted — "max 3 ULP on 12 of 640
elements" localizes a reassociated sum instantly, where a bare
``allclose`` failure says nothing.
"""

from __future__ import annotations

import numpy as np


def _ordered_int64(values: np.ndarray) -> np.ndarray:
    """Map float64 bit patterns to a monotonically ordered int64 line.

    Standard trick: reinterpret the IEEE-754 bits, then flip negative
    values so adjacent floats are adjacent integers.  NaNs map to the
    extremes and are handled by the callers.
    """
    bits = np.asarray(values, dtype=np.float64).view(np.int64)
    return np.where(bits < 0, np.int64(-(2**63) + 1) - bits - np.int64(1), bits)


def ulp_diff(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ULP distance between two float64 arrays.

    Returns 0 where both are NaN, the max int64 where exactly one is
    NaN, and the number of representable doubles between them otherwise.
    +0.0 and -0.0 compare equal (0 ULP).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    zero_pair = (a == 0.0) & (b == 0.0)  # identify +0.0 with -0.0
    nan_a, nan_b = np.isnan(a), np.isnan(b)
    diff = np.abs(_ordered_int64(a) - _ordered_int64(b))
    diff = np.where(zero_pair, np.int64(0), diff)
    diff = np.where(nan_a & nan_b, np.int64(0), diff)
    diff = np.where(nan_a ^ nan_b, np.iinfo(np.int64).max, diff)
    return diff


def max_ulp(a: np.ndarray, b: np.ndarray) -> int:
    """Largest elementwise ULP distance (0 for empty arrays)."""
    diff = ulp_diff(a, b)
    return int(diff.max()) if diff.size else 0


def describe_mismatch(a: np.ndarray, b: np.ndarray, limit: int = 3) -> str:
    """Human-readable summary of where and how badly two arrays differ."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    diff = ulp_diff(a, b)
    bad = np.argwhere(diff > 0)
    if bad.size == 0:
        return "bit-identical"
    worst = int(diff.max())
    abs_err = float(np.nanmax(np.abs(a - b)))
    samples = []
    for idx in bad[:limit]:
        key = tuple(int(v) for v in idx)
        samples.append(f"{key}: {a[key]!r} vs {b[key]!r} ({int(diff[key])} ulp)")
    return (
        f"{len(bad)}/{diff.size} elements differ, max {worst} ulp, "
        f"max abs err {abs_err:.3e}; e.g. " + "; ".join(samples)
    )
