"""Training loop for classifiers and generic regression models."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.datasets import ArrayDataset, DataLoader
from repro.nn import functional as F
from repro.nn.module import Module
from repro.train.optim import SGD
from repro.train.schedule import CosineLR, LRSchedule


@dataclass
class TrainConfig:
    """Hyper-parameters for one classifier training run."""

    epochs: int = 30
    batch_size: int = 128
    lr: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 5e-4
    seed: int = 0
    log_every: int = 0  # epochs between log lines; 0 = silent
    schedule: LRSchedule | None = None

    def resolved_schedule(self) -> LRSchedule:
        return self.schedule or CosineLR(self.lr, self.epochs)


@dataclass
class TrainResult:
    """Summary of a training run."""

    epochs: int
    final_train_loss: float
    final_train_accuracy: float
    test_accuracy: float
    seconds: float
    history: list[dict] = field(default_factory=list)


def evaluate_accuracy(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 256,
) -> float:
    """Top-1 accuracy of ``model`` on an array dataset (eval mode).

    Runs through :func:`repro.attacks.base.predict_logits`, so the
    forward sweep shards across the parallel backend when one is
    installed (``--workers N``) with bit-identical results.
    """
    from repro.attacks.base import predict_logits

    was_training = model.training
    model.eval()
    logits = predict_logits(model, images, batch_size)
    correct = int((logits.argmax(axis=1) == np.asarray(labels)).sum())
    if was_training:
        model.train()
    return correct / len(images)


class Trainer:
    """Cross-entropy classifier trainer with per-epoch LR scheduling."""

    def __init__(self, model: Module, config: TrainConfig | None = None):
        self.model = model
        self.config = config or TrainConfig()

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_test: np.ndarray | None = None,
        y_test: np.ndarray | None = None,
        transform=None,
    ) -> TrainResult:
        cfg = self.config
        dataset = ArrayDataset(x_train, y_train, transform=transform)
        loader = DataLoader(
            dataset, batch_size=cfg.batch_size, shuffle=True, seed=cfg.seed
        )
        optimizer = SGD(
            self.model.parameters(),
            lr=cfg.lr,
            momentum=cfg.momentum,
            weight_decay=cfg.weight_decay,
        )
        schedule = cfg.resolved_schedule()

        history: list[dict] = []
        start_time = time.time()
        last_loss = float("nan")
        last_acc = float("nan")
        for epoch in range(cfg.epochs):
            optimizer.lr = schedule.lr_at(epoch)
            self.model.train()
            losses = []
            correct = 0
            seen = 0
            for images, labels in loader:
                logits = self.model(Tensor(images))
                loss = F.cross_entropy(logits, labels)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
                correct += int((logits.data.argmax(axis=1) == labels).sum())
                seen += len(labels)
            last_loss = float(np.mean(losses))
            last_acc = correct / max(seen, 1)
            record = {
                "epoch": epoch,
                "lr": optimizer.lr,
                "train_loss": last_loss,
                "train_accuracy": last_acc,
            }
            history.append(record)
            if cfg.log_every and (epoch % cfg.log_every == 0 or epoch == cfg.epochs - 1):
                print(
                    f"epoch {epoch:3d}  lr {optimizer.lr:.4f}  "
                    f"loss {last_loss:.4f}  acc {last_acc:.4f}"
                )

        test_acc = float("nan")
        if x_test is not None and y_test is not None:
            test_acc = evaluate_accuracy(self.model, x_test, y_test)
        self.model.eval()
        return TrainResult(
            epochs=cfg.epochs,
            final_train_loss=last_loss,
            final_train_accuracy=last_acc,
            test_accuracy=test_acc,
            seconds=time.time() - start_time,
            history=history,
        )
