"""Reliability experiment + CLI plumbing at tiny scale.

Mirrors ``tests/test_experiments.py``: datasets and Table-I presets are
patched to tiny variants so the full sweep (fault injection, transfer
PGD, HIL PGD) runs in seconds.  Structure and invariants are verified
here; real-scale numbers come from ``benchmarks/bench_13_reliability.py``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.xbar.presets as presets_mod
from repro.core.evaluation import EvaluationScale, HardwareLab
from repro.data import synthetic
from repro.experiments import reliability
from repro.experiments.shared import AttackFactory
from repro.train.trainer import evaluate_accuracy
from repro.train.zoo import ModelZoo

from tests.conftest import make_tiny_crossbar_config


@pytest.fixture(scope="module")
def reliability_env(tmp_path_factory):
    """Tiny datasets + tiny presets (module scope), as in test_experiments."""
    tmp = tmp_path_factory.mktemp("reliability-artifacts")

    tiny_spec = synthetic.SyntheticTaskSpec(
        name="cifar10",
        num_classes=4,
        image_size=8,
        train_size=300,
        test_size=120,
        prototypes_per_class=1,
        basis_cutoff=3,
        instance_noise=0.4,
        pixel_noise=0.05,
        model="resnet20",
        model_width=4,
        epochs=2,
        seed=42,
        attack_eval_size=32,
    )
    saved_tasks = dict(synthetic.TASKS)
    synthetic.TASKS["cifar10"] = tiny_spec

    saved_presets = dict(presets_mod.CROSSBAR_PRESETS)
    presets_mod.CROSSBAR_PRESETS["64x64_300k"] = make_tiny_crossbar_config(
        rows=8, cols=8, r_on=300e3
    )
    presets_mod.CROSSBAR_PRESETS["32x32_100k"] = make_tiny_crossbar_config(
        rows=8, cols=8, r_on=150e3
    )
    presets_mod.CROSSBAR_PRESETS["64x64_100k"] = make_tiny_crossbar_config(
        rows=16, cols=16, r_on=100e3
    )
    for key in presets_mod.CROSSBAR_PRESETS:
        cfg = presets_mod.CROSSBAR_PRESETS[key]
        presets_mod.CROSSBAR_PRESETS[key] = presets_mod.with_overrides(cfg, name=key)

    lab = HardwareLab(scale=EvaluationScale.tiny(), zoo=ModelZoo(cache_dir=tmp))
    saved_env = os.environ.get("REPRO_ARTIFACTS")
    os.environ["REPRO_ARTIFACTS"] = str(tmp)

    yield lab

    synthetic.TASKS.clear()
    synthetic.TASKS.update(saved_tasks)
    presets_mod.CROSSBAR_PRESETS.clear()
    presets_mod.CROSSBAR_PRESETS.update(saved_presets)
    if saved_env is None:
        os.environ.pop("REPRO_ARTIFACTS", None)
    else:
        os.environ["REPRO_ARTIFACTS"] = saved_env


class TestReliabilityExperiment:
    def test_run_structure_and_invariants(self, reliability_env):
        lab = reliability_env
        result = reliability.run(
            lab,
            presets=["64x64_300k"],
            fault_rates=(0.0, 0.2),
            drift_times=(1e4,),
            hil_iterations=2,
        )
        cells = result.data["cells"]["64x64_300k"]
        by_axis = {}
        for cell in cells:
            by_axis.setdefault(cell.axis, []).append(cell)
        assert [c.value for c in by_axis["fault_rate"]] == [0.0, 0.2]
        assert [c.value for c in by_axis["drift_time"]] == [1e4]
        for cell in cells:
            assert 0.0 <= cell.clean <= 1.0
            assert 0.0 <= cell.transfer_pgd <= 1.0
            assert 0.0 <= cell.hil_pgd <= 1.0
        # The zero-fault cell reports a pristine chip ...
        assert by_axis["fault_rate"][0].stuck_fraction == 0.0
        assert by_axis["fault_rate"][0].dead_lines == 0
        # ... and the faulted cell reports roughly the requested rate.
        assert 0.1 < by_axis["fault_rate"][1].stuck_fraction < 0.3
        assert 0.0 <= result.data["baseline_transfer"] <= 1.0
        # The headline table is printable and carries both sweeps.
        text = "\n".join(result.rows)
        assert "stuck-cell rate sweep" in text and "drift-time sweep" in text

    def test_zero_fault_cell_matches_pristine_hardware(self, reliability_env):
        """rate=0 + sigma=0 must reproduce lab.hardware exactly."""
        lab = reliability_env
        hardware = reliability.build_faulted_hardware(
            lab, "cifar10", "64x64_300k", reliability.stuck_cell_faults(0.0)
        )
        x, y = lab.eval_set("cifar10")
        assert evaluate_accuracy(hardware, x, y) == evaluate_accuracy(
            lab.hardware("cifar10", "64x64_300k"), x, y
        )

    def test_fault_config_builders(self):
        faults = reliability.stuck_cell_faults(0.1, gmax_fraction=0.25)
        assert faults.stuck_at_gmin_rate == pytest.approx(0.075)
        assert faults.stuck_at_gmax_rate == pytest.approx(0.025)
        assert not faults.has_drift
        drift = reliability.drift_faults(1e5)
        assert drift.has_drift and not drift.has_stuck_cells
        assert not reliability.drift_faults(0.5).has_drift


class TestReliabilityCLI:
    def test_cli_smoke_prints_table(self, reliability_env, capsys):
        from repro.cli import main

        rc = main(
            [
                "reliability",
                "--fast",
                "--preset",
                "64x64_300k",
                "--rates",
                "0,0.1",
                "--drift-times",
                "",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Reliability" in out
        assert "stuck-cell rate sweep" in out

    def test_cli_rejects_bad_rates(self, capsys):
        from repro.cli import main

        rc = main(["reliability", "--fast", "--rates", "0,banana"])
        assert rc == 2
        assert "comma-separated" in capsys.readouterr().err


class TestAttackFactoryCache:
    def test_distinct_victims_get_distinct_tokens(self, reliability_env):
        factory = AttackFactory(reliability_env)
        from repro.nn.layers import Linear

        a, b = Linear(4, 2), Linear(4, 2)
        token_a = factory._victim_token(a)
        token_b = factory._victim_token(b)
        assert token_a != token_b
        # Tokens are sticky per object across repeated lookups.
        assert factory._victim_token(a) == token_a

    def test_token_survives_id_reuse(self, reliability_env):
        """A freed victim's id() being recycled must not alias the cache.

        The token rides on the object itself, so a new object can never
        inherit a dead victim's cache slot the way raw id() keys could.
        """
        import gc

        from repro.nn.layers import Linear

        factory = AttackFactory(reliability_env)
        a = Linear(4, 2)
        token_a = factory._victim_token(a)
        del a
        gc.collect()
        tokens = {factory._victim_token(Linear(4, 2)) for _ in range(20)}
        assert token_a not in tokens
        assert len(tokens) == 20
