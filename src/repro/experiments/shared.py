"""Shared attack plumbing for the table/figure experiments.

Surrogate ensembles are expensive to distill and reusable across
epsilons (Fig. 2 sweeps epsilon with one fitted ensemble), so
:class:`AttackFactory` memoizes them per (task, victim).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.attacks.ensemble import EnsembleBlackBox, EnsembleConfig, SurrogateSpec
from repro.attacks.pgd import PGD
from repro.attacks.square import SquareAttack
from repro.core.evaluation import HardwareLab
from repro.nn.module import Module
from repro.verify.contracts import maybe_assert_attack_contract


class AttackFactory:
    """Builds and caches the attack models used across experiments."""

    def __init__(self, lab: HardwareLab):
        self.lab = lab
        self._fitted_ensembles: dict[tuple[str, int], EnsembleBlackBox] = {}
        self._victim_tokens = itertools.count()

    def _victim_token(self, victim: Module) -> int:
        """Stable cache token for a victim model.

        ``id(victim)`` alone is unsafe: ids are reused after garbage
        collection, so a long-lived factory could serve an ensemble
        distilled against a *dead* victim to a new model that happens to
        occupy the same address.  The token is stored on the module, so
        it lives exactly as long as the victim does.
        """
        token = getattr(victim, "_attack_factory_token", None)
        if token is None:
            token = next(self._victim_tokens)
            victim._attack_factory_token = token
        return token

    # ------------------------------------------------------------------
    def ensemble_config(self) -> EnsembleConfig:
        scale = self.lab.scale
        width = scale.surrogate_width
        return EnsembleConfig(
            surrogates=[
                SurrogateSpec("resnet10", width=width, seed=101),
                SurrogateSpec("resnet20", width=width, seed=102),
                SurrogateSpec("resnet32", width=width, seed=103),
            ],
            distill_epochs=scale.ensemble_distill_epochs,
            batch_size=min(128, scale.ensemble_query_size),
        )

    def fitted_ensemble(self, task: str, victim: Module) -> EnsembleBlackBox:
        """Distill the surrogate ensemble against ``victim`` (cached).

        ``victim`` is the model the black-box attacker queries: the
        digital model in the non-adaptive scenario, a crossbar hardware
        model in the hardware-in-loop scenario.
        """
        key = (task, self._victim_token(victim))
        if key not in self._fitted_ensembles:
            attack = EnsembleBlackBox(
                epsilon=0.0,  # per-epsilon PGD budgets are set at generate time
                config=self.ensemble_config(),
                seed=17,
            )
            attack.fit(victim, self.lab.surrogate_query_images(task))
            self._fitted_ensembles[key] = attack
        return self._fitted_ensembles[key]

    # ------------------------------------------------------------------
    def ensemble_pgd(
        self, task: str, victim: Module, epsilon: float, iterations: int | None = None
    ) -> np.ndarray:
        """Ensemble black-box adversarial images at one epsilon."""
        iterations = iterations or self.lab.scale.pgd_iterations
        fitted = self.fitted_ensemble(task, victim)
        x, y = self.lab.eval_set(task)
        pgd = PGD(epsilon, iterations=iterations, seed=23)
        x_adv = pgd.generate(fitted.ensemble, x, y).x_adv
        # Enforced only under REPRO_VERIFY_ATTACKS=1 (see repro.verify.contracts).
        maybe_assert_attack_contract(x_adv, x, epsilon, label="ensemble_pgd")
        return x_adv

    def square(
        self,
        task: str,
        target: Module,
        epsilon: float,
        queries: int | None = None,
        seed: int = 31,
    ) -> np.ndarray:
        """Square-attack adversarial images crafted by querying ``target``."""
        queries = queries or self.lab.scale.square_queries
        x, y = self.lab.eval_set(task)
        attack = SquareAttack(epsilon, max_queries=queries, seed=seed)
        x_adv = attack.generate(target, x, y).x_adv
        maybe_assert_attack_contract(x_adv, x, epsilon, label="square")
        return x_adv

    def whitebox_pgd(
        self,
        task: str,
        target: Module,
        epsilon: float,
        iterations: int | None = None,
        batch_size: int = 64,
    ) -> np.ndarray:
        """White-box PGD against ``target`` (digital or hardware model)."""
        iterations = iterations or self.lab.scale.pgd_iterations
        x, y = self.lab.eval_set(task)
        pgd = PGD(epsilon, iterations=iterations, batch_size=batch_size, seed=29)
        x_adv = pgd.generate(target, x, y).x_adv
        maybe_assert_attack_contract(x_adv, x, epsilon, label="whitebox_pgd")
        return x_adv
