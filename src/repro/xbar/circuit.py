"""Sparse nodal analysis of a parasitic NVM crossbar.

This module is the reproduction's stand-in for the paper's HSPICE
simulations: it solves the full resistive network of Fig. 1 — every
cell sits between a wordline (source-line) node and a bitline node,
adjacent nodes are linked by wire resistance ``R_wire``, each row is
driven through ``R_source`` and each column is sensed through
``R_sink`` into a virtual ground.

Kirchhoff's current law at every node gives a sparse linear system in
the ``2 * rows * cols`` node voltages.  Device I-V nonlinearity
(``G(V)`` in Eq. 2 of the paper) is handled by fixed-point iteration:
solve with chord conductances, update them at the new operating point,
repeat.

The solver output is the set of column currents ``I_ni`` — the
non-ideal counterpart of ``I_j = sum_i V_i G_ij``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.xbar.device import DeviceConfig, RRAMDevice


@dataclass(frozen=True)
class CircuitConfig:
    """Parasitic parameters of the crossbar array.

    Attributes
    ----------
    rows, cols:
        Crossbar dimensions (wordlines x bitlines).
    r_source:
        Driver output resistance per wordline (ohms).
    r_sink:
        Column sense resistance to virtual ground (ohms).
    r_wire:
        Interconnect resistance per cell-to-cell wire segment (ohms).
    nonlinear_iterations:
        Fixed-point iterations for the voltage-dependent conductance.
        1 = linear devices only.
    """

    rows: int = 64
    cols: int = 64
    r_source: float = 500.0
    r_sink: float = 500.0
    r_wire: float = 2.5
    nonlinear_iterations: int = 2

    def __post_init__(self):
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("crossbar dimensions must be positive")
        if min(self.r_source, self.r_sink, self.r_wire) < 0:
            raise ValueError("parasitic resistances must be non-negative")


class CrossbarCircuit:
    """Nodal-analysis solver for one crossbar instance."""

    def __init__(self, circuit: CircuitConfig, device: DeviceConfig):
        self.circuit = circuit
        self.device_config = device
        self.device = RRAMDevice(device)
        self._g_wire = 1.0 / max(circuit.r_wire, 1e-9)
        self._g_source = 1.0 / max(circuit.r_source, 1e-9)
        self._g_sink = 1.0 / max(circuit.r_sink, 1e-9)

    # ------------------------------------------------------------------
    # Node indexing: wordline nodes first (row-major), then bitline nodes.
    # ------------------------------------------------------------------
    def _wl(self, i: int, j: int) -> int:
        return i * self.circuit.cols + j

    def _bl(self, i: int, j: int) -> int:
        return self.circuit.rows * self.circuit.cols + i * self.circuit.cols + j

    def _assemble(self, conductances: np.ndarray) -> sp.csr_matrix:
        """Build the nodal conductance matrix for given device G values.

        The RHS depends on the input voltages and is built separately by
        :meth:`_rhs`.
        """
        rows, cols = self.circuit.rows, self.circuit.cols
        n = 2 * rows * cols
        g_w = self._g_wire
        g_src = self._g_source
        g_snk = self._g_sink

        data: list[float] = []
        row_idx: list[int] = []
        col_idx: list[int] = []

        def add(r: int, c: int, v: float) -> None:
            row_idx.append(r)
            col_idx.append(c)
            data.append(v)

        for i in range(rows):
            for j in range(cols):
                wl = self._wl(i, j)
                bl = self._bl(i, j)
                g_dev = conductances[i, j]

                # Wordline node: device + horizontal wires (+ source at j=0).
                diag_wl = g_dev
                add(wl, bl, -g_dev)
                if j > 0:
                    add(wl, self._wl(i, j - 1), -g_w)
                    diag_wl += g_w
                if j < cols - 1:
                    add(wl, self._wl(i, j + 1), -g_w)
                    diag_wl += g_w
                if j == 0:
                    diag_wl += g_src  # to the driver (RHS carries V_i * g_src)
                add(wl, wl, diag_wl)

                # Bitline node: device + vertical wires (+ sink at i=rows-1).
                diag_bl = g_dev
                add(bl, wl, -g_dev)
                if i > 0:
                    add(bl, self._bl(i - 1, j), -g_w)
                    diag_bl += g_w
                if i < rows - 1:
                    add(bl, self._bl(i + 1, j), -g_w)
                    diag_bl += g_w
                if i == rows - 1:
                    diag_bl += g_snk  # to virtual ground
                add(bl, bl, diag_bl)

        return sp.csr_matrix(
            (np.array(data), (np.array(row_idx), np.array(col_idx))), shape=(n, n)
        )

    def _rhs(self, voltages: np.ndarray) -> np.ndarray:
        """RHS vector(s) for input voltage vector(s) (V, rows) or (rows,)."""
        rows, cols = self.circuit.rows, self.circuit.cols
        v = np.atleast_2d(np.asarray(voltages, dtype=np.float64))
        b = np.zeros((v.shape[0], 2 * rows * cols))
        for i in range(rows):
            b[:, self._wl(i, 0)] = v[:, i] * self._g_source
        return b

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(
        self, voltages: np.ndarray, conductances: np.ndarray
    ) -> np.ndarray:
        """Non-ideal column currents for the given inputs.

        Parameters
        ----------
        voltages:
            (rows,) or (batch, rows) input voltages at the wordline
            drivers.
        conductances:
            (rows, cols) programmed device conductances.

        Returns
        -------
        (cols,) or (batch, cols) currents into the column sense amps.
        """
        rows, cols = self.circuit.rows, self.circuit.cols
        conductances = np.asarray(conductances, dtype=np.float64)
        if conductances.shape != (rows, cols):
            raise ValueError(
                f"conductances shape {conductances.shape} != ({rows}, {cols})"
            )
        single = np.ndim(voltages) == 1
        v_in = np.atleast_2d(np.asarray(voltages, dtype=np.float64))
        if v_in.shape[1] != rows:
            raise ValueError(f"voltages last dim {v_in.shape[1]} != rows {rows}")

        iterations = max(1, self.circuit.nonlinear_iterations)

        # Iteration 1: linear solve with the programmed conductances —
        # one factorization shared by the whole batch.
        matrix = self._assemble(conductances)
        lu = spla.splu(matrix.tocsc())
        b = self._rhs(v_in)
        solution = np.stack([lu.solve(b[k]) for k in range(b.shape[0])])

        if self.device_config.iv_beta != 0.0:
            # Fixed-point refinement of the voltage-dependent chord
            # conductances, per input vector (each vector biases the
            # devices at a different operating point, so each gets its
            # own linearization — matching per-corner SPICE sweeps).
            for _iteration in range(1, iterations):
                for k in range(v_in.shape[0]):
                    wl_nodes = solution[k, : rows * cols].reshape(rows, cols)
                    bl_nodes = solution[k, rows * cols :].reshape(rows, cols)
                    v_cell = wl_nodes - bl_nodes
                    g_eff = self.device.effective_conductance(conductances, v_cell)
                    lu_k = spla.splu(self._assemble(g_eff).tocsc())
                    solution[k] = lu_k.solve(b[k])

        bl_bottom = np.stack(
            [
                solution[:, self._bl(rows - 1, j)]
                for j in range(cols)
            ],
            axis=1,
        )
        currents = bl_bottom * self._g_sink
        return currents[0] if single else currents

    def ideal_currents(
        self, voltages: np.ndarray, conductances: np.ndarray
    ) -> np.ndarray:
        """Ideal (parasitic-free, linear-device) column currents V.G."""
        v = np.asarray(voltages, dtype=np.float64)
        g = np.asarray(conductances, dtype=np.float64)
        return v @ g
