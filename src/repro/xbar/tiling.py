"""Weight-matrix tiling onto crossbar-sized segments (PUMA mapping, step ii).

A layer's weight matrix is laid out with input features along crossbar
rows (wordlines) and output features along columns (bitlines).  Layers
larger than one crossbar are split into a grid of tiles; each tile's
analog output contributes a partial sum that the digital periphery
accumulates.

Zero-padding fills the last ragged tile: a zero weight maps to the
lowest conductance level and a zero input to zero volts, so padding
changes nothing ideally and adds only the (real, also present in
hardware) sneak-path contribution of G_min cells non-ideally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TiledMatrix:
    """A (rows_total, cols_total) matrix split into crossbar tiles.

    Attributes
    ----------
    tiles:
        ``tiles[r][c]`` is the (tile_rows, tile_cols) block; all blocks
        padded to full tile size.
    rows_total, cols_total:
        Original (unpadded) dimensions.
    tile_rows, tile_cols:
        Crossbar dimensions.
    """

    tiles: list[list[np.ndarray]]
    rows_total: int
    cols_total: int
    tile_rows: int
    tile_cols: int

    @property
    def grid_shape(self) -> tuple[int, int]:
        return len(self.tiles), len(self.tiles[0])

    def assemble(self) -> np.ndarray:
        """Reconstruct the padded-then-cropped original matrix."""
        rows = [np.concatenate(row_tiles, axis=1) for row_tiles in self.tiles]
        full = np.concatenate(rows, axis=0)
        return full[: self.rows_total, : self.cols_total]

    def row_slices(self) -> list[slice]:
        """Input-vector slices feeding each tile row (unpadded extents)."""
        out = []
        for r in range(self.grid_shape[0]):
            start = r * self.tile_rows
            out.append(slice(start, min(start + self.tile_rows, self.rows_total)))
        return out

    def col_slices(self) -> list[slice]:
        """Output-vector slices produced by each tile column (unpadded)."""
        out = []
        for c in range(self.grid_shape[1]):
            start = c * self.tile_cols
            out.append(slice(start, min(start + self.tile_cols, self.cols_total)))
        return out


def tile_matrix(matrix: np.ndarray, tile_rows: int, tile_cols: int) -> TiledMatrix:
    """Split ``matrix`` (rows, cols) into zero-padded crossbar tiles."""
    if matrix.ndim != 2:
        raise ValueError(f"expected 2-D matrix, got shape {matrix.shape}")
    if tile_rows <= 0 or tile_cols <= 0:
        raise ValueError("tile dimensions must be positive")
    rows_total, cols_total = matrix.shape
    grid_rows = -(-rows_total // tile_rows)  # ceil division
    grid_cols = -(-cols_total // tile_cols)
    padded = np.zeros((grid_rows * tile_rows, grid_cols * tile_cols), dtype=matrix.dtype)
    padded[:rows_total, :cols_total] = matrix
    tiles = [
        [
            padded[
                r * tile_rows : (r + 1) * tile_rows,
                c * tile_cols : (c + 1) * tile_cols,
            ].copy()
            for c in range(grid_cols)
        ]
        for r in range(grid_rows)
    ]
    return TiledMatrix(
        tiles=tiles,
        rows_total=rows_total,
        cols_total=cols_total,
        tile_rows=tile_rows,
        tile_cols=tile_cols,
    )
