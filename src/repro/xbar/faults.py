"""Fault injection and reliability models for NVM crossbars.

The paper's Discussion (§V) conjectures that device-level imperfections
"may further hinder the transferability of attacks"; related work
(Bhattacharjee & Panda, *Rethinking Non-idealities in Memristive
Crossbars for Adversarial Robustness*; Joksas et al., *Nonideality-aware
training makes memristive networks more robust to adversarial attacks*)
shows the same non-idealities are first-order for clean accuracy too.
This module makes the three fault classes every real RRAM chip exhibits
injectable and reproducible:

* **Stuck-at cells** — a fraction of devices is frozen at ``G_min``
  (stuck-OFF: broken filament, open cell) or ``G_max`` (stuck-ON:
  shorted cell) regardless of the programmed level.
* **Conductance drift / retention loss** — each programmed cell decays
  as ``g(t) = g0 * (t/t0)^-nu`` with a per-cell lognormal drift
  exponent (the standard retention power law); :meth:`FaultModel.refresh`
  re-quantizes drifted conductances to the nearest programmable level,
  modelling a refresh (read-verify-rewrite) cycle.
* **Line faults** — whole wordlines (rows) or bitlines (columns) of a
  physical crossbar tile are dead (electroforming or periphery
  failures); a dead line contributes nothing to any dot product.

Determinism: fault realizations are a pure function of
``(FaultConfig.seed, chip_token, tile_index)``.  The same chip
programmed twice has identical faults (injection is idempotent); two
chips with different tokens draw independent fault maps — exactly the
chip-to-chip semantics of :mod:`repro.xbar.variation`.

:class:`GuardConfig` configures the engine's graceful-degradation
guard: when an analog tile returns non-finite or badly saturated
currents (a sick surrogate, a pathological fault pattern), the engine
can fall back that tile to the ideal digital path instead of corrupting
the whole forward pass (see ``CrossbarEngine`` in
:mod:`repro.xbar.simulator`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.xbar.device import DeviceConfig, RRAMDevice

#: Valid guard modes (see :class:`GuardConfig`).
GUARD_MODES = ("off", "warn", "fallback", "raise")


@dataclass(frozen=True)
class FaultConfig:
    """Declarative description of one chip's fault population.

    All rates are per-cell (or per-line) probabilities in ``[0, 1]``.
    The default config injects nothing and is guaranteed to leave the
    engine's outputs bit-identical to a fault-free build.

    Attributes
    ----------
    stuck_at_gmin_rate:
        Fraction of cells frozen at ``G_min`` (stuck-OFF).
    stuck_at_gmax_rate:
        Fraction of cells frozen at ``G_max`` (stuck-ON).
    drift_time:
        Time since programming, in units of ``drift_t0``; ``<= t0``
        (including 0) disables drift.
    drift_t0:
        Reference time of the retention power law (same units as
        ``drift_time``).
    drift_nu:
        Median drift exponent ``nu`` of ``g(t) = g0 * (t/t0)^-nu``.
        Typical metal-oxide RRAM: 0.01-0.1.
    drift_sigma:
        Lognormal dispersion of the per-cell drift exponent (cell-to-
        cell retention variation); 0 gives every cell the median ``nu``.
    dead_row_rate:
        Per-tile probability for each wordline (input row) to be dead.
    dead_col_rate:
        Per-tile probability for each bitline (output column) to be dead.
    seed:
        Base seed of the fault map (combined with the chip token and
        the tile index).
    """

    stuck_at_gmin_rate: float = 0.0
    stuck_at_gmax_rate: float = 0.0
    drift_time: float = 0.0
    drift_t0: float = 1.0
    drift_nu: float = 0.05
    drift_sigma: float = 0.0
    dead_row_rate: float = 0.0
    dead_col_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "stuck_at_gmin_rate",
            "stuck_at_gmax_rate",
            "dead_row_rate",
            "dead_col_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.stuck_at_gmin_rate + self.stuck_at_gmax_rate > 1.0:
            raise ValueError(
                "stuck_at_gmin_rate + stuck_at_gmax_rate must not exceed 1"
            )
        if self.drift_t0 <= 0:
            raise ValueError(f"drift_t0 must be positive, got {self.drift_t0}")
        if self.drift_time < 0:
            raise ValueError(f"drift_time must be non-negative, got {self.drift_time}")
        if self.drift_nu < 0:
            raise ValueError(f"drift_nu must be non-negative, got {self.drift_nu}")
        if self.drift_sigma < 0:
            raise ValueError(f"drift_sigma must be non-negative, got {self.drift_sigma}")

    # ------------------------------------------------------------------
    @property
    def has_stuck_cells(self) -> bool:
        return self.stuck_at_gmin_rate > 0 or self.stuck_at_gmax_rate > 0

    @property
    def has_drift(self) -> bool:
        return self.drift_nu > 0 and self.drift_time > self.drift_t0

    @property
    def has_line_faults(self) -> bool:
        return self.dead_row_rate > 0 or self.dead_col_rate > 0

    @property
    def enabled(self) -> bool:
        """True when any injector would modify conductances."""
        return self.has_stuck_cells or self.has_drift or self.has_line_faults

    def tag(self) -> str:
        """Short human-readable summary (used in derived config names)."""
        parts = []
        if self.has_stuck_cells:
            parts.append(f"sa{self.stuck_at_gmin_rate + self.stuck_at_gmax_rate:g}")
        if self.has_drift:
            parts.append(f"t{self.drift_time:g}")
        if self.has_line_faults:
            parts.append(f"ln{max(self.dead_row_rate, self.dead_col_rate):g}")
        return "+".join(parts) if parts else "nofault"


@dataclass(frozen=True)
class GuardConfig:
    """Graceful-degradation policy of the crossbar engine.

    ``mode``:

    * ``"off"``       — no runtime checks (pre-guard behaviour);
    * ``"warn"``      — detect and log, keep the analog values;
    * ``"fallback"``  — detect, log, and recompute the affected tile's
      columns through the ideal digital path (default);
    * ``"raise"``     — detect and raise :class:`TileHealthError`.

    ``saturation_factor`` trips the guard when ``|I|`` exceeds that
    multiple of the ADC full-scale current — far beyond anything a
    physical array can source, so a clear sign of a sick predictor.
    ``None`` disables the saturation check (non-finite detection stays).
    """

    mode: str = "fallback"
    saturation_factor: float | None = 8.0

    def __post_init__(self) -> None:
        if self.mode not in GUARD_MODES:
            raise ValueError(f"guard mode must be one of {GUARD_MODES}, got {self.mode!r}")
        if self.saturation_factor is not None and self.saturation_factor <= 0:
            raise ValueError(
                f"saturation_factor must be positive or None, got {self.saturation_factor}"
            )

    @property
    def active(self) -> bool:
        return self.mode != "off"


class TileHealthError(RuntimeError):
    """Raised in guard mode ``"raise"`` when a tile output is sick."""


@dataclass
class FaultSummary:
    """Aggregate fault counts over every programmed tile of an engine."""

    tiles: int = 0
    cells: int = 0
    stuck_gmin: int = 0
    stuck_gmax: int = 0
    dead_rows: int = 0
    dead_cols: int = 0
    drifted: bool = False

    def merge(self, other: "FaultSummary") -> None:
        self.tiles += other.tiles
        self.cells += other.cells
        self.stuck_gmin += other.stuck_gmin
        self.stuck_gmax += other.stuck_gmax
        self.dead_rows += other.dead_rows
        self.dead_cols += other.dead_cols
        self.drifted = self.drifted or other.drifted

    def format(self) -> str:
        frac = (self.stuck_gmin + self.stuck_gmax) / self.cells if self.cells else 0.0
        return (
            f"{self.tiles} tiles / {self.cells} cells: "
            f"{self.stuck_gmin} stuck-OFF, {self.stuck_gmax} stuck-ON "
            f"({frac:.3%} of cells), {self.dead_rows} dead rows, "
            f"{self.dead_cols} dead cols, drift={'on' if self.drifted else 'off'}"
        )


class FaultModel:
    """Vectorized, seeded fault injectors for programmed tiles.

    One instance describes one *chip*: every physical crossbar tile the
    engine programs gets an independent but reproducible fault map drawn
    from ``(config.seed, chip_token, tile_index)``.
    """

    def __init__(self, config: FaultConfig, device: DeviceConfig, chip_token: int = 0):
        self.config = config
        self.device = device
        self.chip_token = int(chip_token)
        self._device_ops = RRAMDevice(device)

    # ------------------------------------------------------------------
    def tile_rng(self, tile_index: int, stream: int = 0) -> np.random.Generator:
        """The deterministic RNG for one tile's fault draws.

        Each injector class uses its own ``stream`` so one fault map is
        stable under changes to the *other* classes' configuration
        (e.g. enabling drift does not reshuffle the stuck-cell map).
        """
        return np.random.default_rng(
            [
                int(self.config.seed) & 0x7FFFFFFF,
                self.chip_token & 0x7FFFFFFF,
                int(tile_index),
                int(stream),
            ]
        )

    def inject(
        self, conductances: np.ndarray, tile_index: int
    ) -> tuple[np.ndarray, FaultSummary]:
        """Apply all configured faults to one programmed tile.

        Order matters physically: drift acts on the *programmed* value,
        stuck cells override whatever was programmed (and do not drift —
        a shorted or open cell has no filament dynamics), and dead lines
        override everything on their row/column.

        Returns the faulted conductances (a new array; the input is
        never modified) and a :class:`FaultSummary` of what was injected.
        """
        cfg = self.config
        g = np.array(conductances, dtype=np.float64, copy=True)
        summary = FaultSummary(tiles=1, cells=g.size)
        if not cfg.enabled:
            return g, summary
        if cfg.has_drift:
            g = self.apply_drift(g, self.tile_rng(tile_index, stream=0))
            summary.drifted = True
        if cfg.has_stuck_cells:
            u = self.tile_rng(tile_index, stream=1).random(size=g.shape)
            stuck_min = u < cfg.stuck_at_gmin_rate
            stuck_max = (u >= cfg.stuck_at_gmin_rate) & (
                u < cfg.stuck_at_gmin_rate + cfg.stuck_at_gmax_rate
            )
            g[stuck_min] = self.device.g_min
            g[stuck_max] = self.device.g_max
            summary.stuck_gmin = int(stuck_min.sum())
            summary.stuck_gmax = int(stuck_max.sum())
        if cfg.has_line_faults:
            line_rng = self.tile_rng(tile_index, stream=2)
            dead_rows = line_rng.random(size=g.shape[0]) < cfg.dead_row_rate
            dead_cols = line_rng.random(size=g.shape[1]) < cfg.dead_col_rate
            g[dead_rows, :] = self.device.g_min
            g[:, dead_cols] = self.device.g_min
            summary.dead_rows = int(dead_rows.sum())
            summary.dead_cols = int(dead_cols.sum())
        return g, summary

    # ------------------------------------------------------------------
    def apply_drift(self, conductances: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Retention power-law decay ``g(t) = g0 * (t/t0)^-nu``.

        Each cell's exponent is lognormal around ``drift_nu`` with
        dispersion ``drift_sigma``; the decayed conductance is clipped
        to the physical ``[g_min, g_max]`` window.  Only applies for
        ``t > t0`` (the power law is normalized to its programmed value
        at ``t0``).
        """
        cfg = self.config
        dev = self.device
        g = np.asarray(conductances, dtype=np.float64)
        if not cfg.has_drift:
            return np.array(g, copy=True)
        if cfg.drift_sigma > 0:
            nu = cfg.drift_nu * rng.lognormal(0.0, cfg.drift_sigma, size=g.shape)
        else:
            nu = np.full(g.shape, cfg.drift_nu)
        decay = (cfg.drift_time / cfg.drift_t0) ** (-nu)
        return np.clip(g * decay, dev.g_min, dev.g_max)

    def refresh(self, conductances: np.ndarray) -> np.ndarray:
        """Re-quantize drifted conductances to the nearest level.

        Models a refresh cycle (read, snap to the closest programmable
        level, rewrite).  Stuck cells cannot be refreshed in reality;
        callers studying refresh policies should re-:meth:`inject` stuck
        and line faults after refreshing.
        """
        ops = self._device_ops
        return ops.level_to_conductance(ops.conductance_to_level(conductances))


def with_faults(config, faults: FaultConfig):
    """Derive a :class:`~repro.xbar.presets.CrossbarConfig` with faults.

    Mirrors :func:`repro.xbar.variation.with_programming_variation`; the
    derived config is renamed so cached hardware/eval results cannot be
    confused with the pristine preset.
    """
    return dataclasses.replace(
        config, faults=faults, name=f"{config.name}_{faults.tag()}"
    )


def with_guard(config, guard: GuardConfig):
    """Derive a crossbar config with a different degradation policy."""
    return dataclasses.replace(config, guard=guard)


__all__ = [
    "FaultConfig",
    "FaultModel",
    "FaultSummary",
    "GuardConfig",
    "GUARD_MODES",
    "TileHealthError",
    "with_faults",
    "with_guard",
]
