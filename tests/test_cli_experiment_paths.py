"""CLI experiment-command smoke tests in the tiny patched environment.

The heavier CLI paths (table3/table4/fig/energy) construct a
HardwareLab internally; these tests patch the dataset/preset registries
(as the experiment integration tests do) and drive the commands through
``main`` to lock the argument plumbing.
"""

from __future__ import annotations

import os

import pytest

import repro.xbar.presets as presets_mod
from repro.data import synthetic

from tests.conftest import make_tiny_crossbar_config


@pytest.fixture()
def patched_env(tmp_path, monkeypatch):
    tiny_spec = synthetic.SyntheticTaskSpec(
        name="cifar10",
        num_classes=3,
        image_size=8,
        train_size=150,
        test_size=60,
        prototypes_per_class=1,
        basis_cutoff=3,
        model="resnet20",
        model_width=4,
        epochs=1,
        seed=21,
        attack_eval_size=16,
    )
    monkeypatch.setitem(synthetic.TASKS, "cifar10", tiny_spec)
    for key in list(presets_mod.CROSSBAR_PRESETS):
        monkeypatch.setitem(
            presets_mod.CROSSBAR_PRESETS,
            key,
            presets_mod.with_overrides(make_tiny_crossbar_config(), name=key),
        )
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
    # The CLI uses the process-wide default zoo; isolate it.
    import repro.train.zoo as zoo_mod

    monkeypatch.setattr(zoo_mod, "_DEFAULT_ZOO", None)
    yield


class TestCLIExperimentCommands:
    def test_nf_command(self, patched_env, capsys):
        from repro.cli import main

        assert main(["nf", "--samples", "2"]) == 0
        assert "NF circuit" in capsys.readouterr().out

    def test_train_command(self, patched_env, capsys):
        from repro.cli import main

        assert main(["train", "--task", "cifar10", "--fast"]) == 0
        assert "test accuracy" in capsys.readouterr().out

    def test_energy_command(self, patched_env, capsys):
        from repro.cli import main

        assert main(["energy", "--task", "cifar10", "--fast", "--preset", "64x64_100k"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
