"""Fig. 6 regeneration: adaptive BB attacks with attacker-model mismatch.

Paper shape: against the 64x64_100k target, surrogate ensembles built by
querying crossbar hardware transfer well — and the closer the
attacker's crossbar NF is to the target's, the stronger the attack
(64x64_100k-built >= 32x32_100k-built >= 64x64_300k-built).
"""

from repro.experiments import fig6
from repro.experiments.config import bench_profile as _profile


def bench_fig6(benchmark, lab, factory, store):
    profile = _profile()
    if profile == "tiny":
        tasks, eps_grid = ["cifar10"], (4,)
    elif profile == "small":
        tasks, eps_grid = ["cifar10"], (2, 4)
    else:
        tasks, eps_grid = ["cifar10", "cifar100"], (2, 4, 6, 8)
    attackers = ["64x64_300k", "64x64_100k"] if profile == "small" else None
    result = benchmark.pedantic(
        lambda: fig6.run(
            lab, tasks=tasks, eps_grid=eps_grid, attacker_presets=attackers, factory=factory
        ),
        rounds=1,
        iterations=1,
    )
    store["fig6_cells"] = result.data
    result.print()

    for task in tasks:
        cells = result.data[task]
        # Average the target's accuracy per attacker model over the sweep;
        # a matched attacker should never be weaker than the most
        # mismatched one.
        def mean_target_acc(attacker):
            vals = [
                c.variants[fig6.TARGET_PRESET]
                for c in cells
                if f"attacker {attacker}" in c.attack
            ]
            return sum(vals) / len(vals)

        matched = mean_target_acc("64x64_100k")
        mismatched = mean_target_acc("64x64_300k")
        assert matched <= mismatched + 0.10
