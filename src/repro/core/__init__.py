"""The paper's primary contribution: adversarial-robustness evaluation
of DNNs on non-ideal NVM crossbar hardware.

* :mod:`repro.core.threat_models` — the four threat scenarios of
  Table II as structured configuration.
* :mod:`repro.core.evaluation` — the evaluation engine: given a victim,
  a set of hardware variants, defenses and attacks, measure clean and
  adversarial accuracy for every cell of Tables III/IV.
* :mod:`repro.core.robustness` — derived analyses: robustness gain vs
  Non-ideality Factor (Fig. 5), epsilon sweeps (Figs. 2-4, 6).
"""

from repro.core.threat_models import (
    TABLE_II,
    AttackFamily,
    KnowledgeProfile,
    ThreatScenario,
    threat_scenario,
)
from repro.core.evaluation import (
    CellResult,
    EvaluationScale,
    HardwareLab,
    adversarial_accuracy,
)
from repro.core.robustness import (
    GainPoint,
    robustness_gain,
    gain_vs_nf_table,
)

__all__ = [
    "TABLE_II",
    "AttackFamily",
    "KnowledgeProfile",
    "ThreatScenario",
    "threat_scenario",
    "CellResult",
    "EvaluationScale",
    "HardwareLab",
    "adversarial_accuracy",
    "GainPoint",
    "robustness_gain",
    "gain_vs_nf_table",
]
