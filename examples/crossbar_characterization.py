"""Characterize NVM crossbars: device curves, circuit non-ideality, GENIEx.

Walks the hardware-modeling stack bottom-up, the way §II-A of the paper
introduces it:

1. RRAM device I-V characteristics at each conductance level,
2. circuit-level Non-ideality Factor as a function of crossbar size and
   ON resistance (the two knobs of Table I),
3. a GENIEx surrogate trained on the circuit data, with its fidelity
   metrics.

Run:  python examples/crossbar_characterization.py  [--fast]
"""

import argparse

import numpy as np

from repro.xbar import CircuitConfig, DeviceConfig, RRAMDevice
from repro.xbar.geniex import GENIExTrainConfig, GENIExTrainer
from repro.xbar.nf import crossbar_nf


def ascii_bar(value: float, full_scale: float, width: int = 40) -> str:
    filled = int(round(min(value / full_scale, 1.0) * width))
    return "#" * filled + "." * (width - filled)


def section(title: str) -> None:
    print(f"\n--- {title} ---")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="fewer samples")
    args = parser.parse_args()
    samples = 2 if args.fast else 4

    # 1. Device level ---------------------------------------------------
    section("RRAM device: I-V characteristic per programmed level")
    device = DeviceConfig(r_on=100e3, on_off_ratio=50, levels_bits=2, iv_beta=0.25)
    rram = RRAMDevice(device)
    voltages = np.linspace(0, device.v_read, 6)
    print(f"{'level':>5} {'G (uS)':>8} | current (uA) at V = "
          + ", ".join(f"{v:.3f}" for v in voltages))
    for level in range(device.num_levels):
        conductance = rram.level_to_conductance(np.array([level]))[0]
        currents = rram.current(np.full(6, conductance), voltages) * 1e6
        print(f"{level:>5} {conductance * 1e6:>8.2f} | "
              + ", ".join(f"{i:6.3f}" for i in currents))

    # 2. Circuit level ---------------------------------------------------
    section("Non-ideality Factor vs crossbar size (R_ON = 100k)")
    rng_seed = 3
    for size in (16, 32, 64):
        circuit = CircuitConfig(rows=size, cols=size, r_source=350, r_sink=350, r_wire=4.0)
        nf = crossbar_nf(circuit, device, rng=np.random.default_rng(rng_seed),
                         num_matrices=samples, vectors_per_matrix=6)
        print(f"  {size:>3}x{size:<3} NF = {nf:.3f}  {ascii_bar(nf, 0.3)}")

    section("Non-ideality Factor vs ON resistance (64x64)")
    for r_on in (100e3, 200e3, 300e3):
        dev = DeviceConfig(r_on=r_on, on_off_ratio=50, levels_bits=2, iv_beta=0.25)
        circuit = CircuitConfig(rows=64, cols=64, r_source=350, r_sink=350, r_wire=4.0)
        nf = crossbar_nf(circuit, dev, rng=np.random.default_rng(rng_seed),
                         num_matrices=samples, vectors_per_matrix=6)
        print(f"  R_ON={r_on / 1e3:>4.0f}k NF = {nf:.3f}  {ascii_bar(nf, 0.3)}")

    print("\n(Table I trend: NF grows with size, shrinks with R_ON.)")

    # 3. GENIEx surrogate --------------------------------------------------
    section("GENIEx surrogate training (32x32, R_ON=100k)")
    circuit = CircuitConfig(rows=32, cols=32, r_source=350, r_sink=350, r_wire=4.0)
    config = GENIExTrainConfig(
        num_matrices=30 if args.fast else 80,
        vectors_per_matrix=6,
        epochs=20 if args.fast else 40,
    )
    surrogate = GENIExTrainer(circuit, device, config).train(verbose=True)
    print("fidelity metrics:")
    for key in ("r2", "r2_poly", "nf_circuit", "nf_surrogate"):
        print(f"  {key:<14} {surrogate.metrics[key]:.4f}")


if __name__ == "__main__":
    main()
