"""Multi-tenant model registry over the engine cache's disk tier.

Each tenant names a (task, crossbar preset) pair plus its hardware
personality: int8 quantization, a stuck-cell fault population, and a
temporal-drift model.  Loading a tenant converts the shared victim to
hardware through :func:`convert_to_hardware` — which means programmed
engines come out of the content-addressed engine cache (warm process
hits, or the disk tier's epoch-0 snapshots) instead of being
reprogrammed — recalibrates them on the tenant's calibration set, and
pins every DAC for serving (:func:`repro.serve.pin_for_serving`).

Because the cache refuses to round-trip aged engines (PR 6) and
``clone_pristine`` resets all mutable state, *evicting a tenant and
reloading it is bitwise stable*: the reload reproduces the original
load's logits exactly, no matter how much traffic aged the evicted
engines.  The serve test battery and `repro.verify` enforce this.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.obs import runtime as _obs_runtime
from repro.obs.metrics import REGISTRY


@dataclass(frozen=True)
class TenantSpec:
    """One served model's identity and hardware personality."""

    name: str
    task: str = "cifar10"
    preset: str = "32x32_100k"
    #: int8 quantized inference (static input scales + integer MVM path).
    quant: bool = False
    #: Stuck-at-G_min cell fraction (0 disables the fault layer).
    stuck_rate: float = 0.0
    #: Per-epoch drift pulses (0 disables the temporal layer).
    drift_epoch_pulses: int = 0
    #: Retention power-law exponent of the drift model.  The epoch
    #: clock alone only *counts* age; a tenant whose conductances
    #: should actually decay under traffic (the episode the live
    #: anomaly watcher exists to catch) needs a mechanism too.
    drift_retention_nu: float = 0.0
    #: Lognormal dispersion of the per-cell retention exponent.
    drift_retention_sigma: float = 0.0
    #: DAC full-scale headroom over the calibration maximum.
    dac_margin: float = 1.0
    #: SLO: latency bound every request should beat at the tracker's
    #: compliance target (None disables latency-objective tracking).
    slo_p99_ms: float | None = None
    #: SLO: tolerated fraction of rejected submissions (None disables).
    slo_max_reject_rate: float | None = None

    def build_config(self):
        """The tenant's crossbar config, derived from its preset."""
        from repro.xbar.drift import DriftConfig, with_drift
        from repro.xbar.presets import crossbar_preset
        from repro.xbar.quant import QuantConfig, with_quant

        config = crossbar_preset(self.preset)
        if self.quant:
            config = with_quant(config, QuantConfig(mode="int8"))
        if self.stuck_rate > 0.0:
            config = dataclasses.replace(
                config,
                faults=dataclasses.replace(
                    config.faults, stuck_at_gmin_rate=self.stuck_rate
                ),
            )
        if self.drift_epoch_pulses > 0:
            config = with_drift(
                config,
                DriftConfig(
                    epoch_pulses=self.drift_epoch_pulses,
                    retention_nu=self.drift_retention_nu,
                    retention_sigma=self.drift_retention_sigma,
                ),
            )
        return config


@dataclass
class LoadedModel:
    """One resident tenant: the pinned hardware model plus load telemetry."""

    spec: TenantSpec
    model: object
    load_ms: float
    #: True when the programmed engines had to be rebuilt from scratch
    #: (no process-cache or disk-tier snapshot available).
    cold: bool
    pinned: dict[str, float] = field(default_factory=dict)
    loads: int = 1
    #: Per-image input shape (from the calibration set) — the serving
    #: front-end rejects mismatched submissions before they can poison
    #: a coalesced micro-batch.
    input_shape: tuple | None = None


class ModelRegistry:
    """Name-addressed store of served hardware models.

    ``lab`` supplies the shared expensive state — trained victims, task
    data, calibration images and GENIEx surrogates — exactly as the
    offline experiments use it; the registry owns only the per-tenant
    conversion, pinning and residency.
    """

    def __init__(self, lab):
        self.lab = lab
        self._specs: dict[str, TenantSpec] = {}
        self._loaded: dict[str, LoadedModel] = {}

    # ------------------------------------------------------------------
    def register(self, spec: TenantSpec) -> TenantSpec:
        """Declare a tenant (idempotent for an identical spec)."""
        existing = self._specs.get(spec.name)
        if existing is not None and existing != spec:
            raise ValueError(
                f"tenant {spec.name!r} already registered with a different spec"
            )
        self._specs[spec.name] = spec
        return spec

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def names(self) -> list[str]:
        return sorted(self._specs)

    def resident(self) -> list[str]:
        return sorted(self._loaded)

    def spec(self, name: str) -> TenantSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(f"unknown tenant {name!r}; registered: {self.names()}")

    # ------------------------------------------------------------------
    def load(self, name: str) -> LoadedModel:
        """Convert + calibrate + pin one tenant (no-op when resident)."""
        cached = self._loaded.get(name)
        if cached is not None:
            return cached
        from repro.serve.pinning import pin_for_serving
        from repro.xbar.engine_cache import ENGINE_CACHE
        from repro.xbar.simulator import convert_to_hardware

        spec = self.spec(name)
        misses_before = ENGINE_CACHE.stats.misses
        start = time.perf_counter()
        calibration = self.lab.calibration_images(spec.task)
        model = convert_to_hardware(
            self.lab.victim(spec.task),
            spec.build_config(),
            predictor=self.lab.geniex(spec.preset),
            calibration_images=calibration,
        )
        pinned = pin_for_serving(model, margin=spec.dac_margin)
        load_ms = (time.perf_counter() - start) * 1e3
        cold = ENGINE_CACHE.stats.misses > misses_before
        entry = LoadedModel(
            spec=spec,
            model=model,
            load_ms=load_ms,
            cold=cold,
            pinned=pinned,
            input_shape=tuple(calibration.shape[1:]),
        )
        self._loaded[name] = entry
        REGISTRY.counter("serve.registry.loads").inc()
        REGISTRY.histogram("serve.registry.load_ms").observe(load_ms)
        _obs_runtime.event(
            "registry_load",
            model=name,
            task=spec.task,
            preset=spec.preset,
            quant=spec.quant,
            load_ms=load_ms,
            cold=cold,
        )
        return entry

    def load_all(self) -> list[LoadedModel]:
        return [self.load(name) for name in self.names()]

    def model(self, name: str) -> LoadedModel:
        """The resident tenant entry (loads lazily on first use)."""
        entry = self._loaded.get(name)
        if entry is not None:
            return entry
        return self.load(name)

    def input_shape(self, name: str) -> tuple | None:
        """A resident tenant's per-image shape (None until loaded)."""
        entry = self._loaded.get(name)
        return entry.input_shape if entry is not None else None

    def evict(self, name: str) -> bool:
        """Drop a tenant's resident model (its spec stays registered).

        The evicted engines are discarded wholesale — aged state and
        all.  A later :meth:`load` rebuilds from the engine cache's
        pristine clones / epoch-0 disk snapshots and recalibrates, so
        reload is bitwise identical to the original load.
        """
        return self._loaded.pop(name, None) is not None
