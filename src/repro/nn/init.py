"""Weight initialization schemes (He/Kaiming and Xavier/Glorot)."""

from __future__ import annotations

import numpy as np


def kaiming_normal(
    shape: tuple[int, ...], rng: np.random.Generator, fan_in: int | None = None
) -> np.ndarray:
    """He-normal init: std = sqrt(2 / fan_in); standard for ReLU nets."""
    if fan_in is None:
        fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Glorot-uniform init for tanh/sigmoid heads (used by GENIEx MLP)."""
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    fan_out = shape[0]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
