"""Table IV regeneration: hardware-in-loop adaptive attacks.

Paper shape being reproduced:

* HIL ensemble BB drives crossbar accuracy *below* the digital
  baseline (e.g. CIFAR-10: 18.9 -> 1.3-2.0 on all crossbars);
* HIL Square (30 hardware queries) is strongest on the matching
  crossbar, weaker when the attacker/target NF mismatch grows;
* HIL white-box PGD with the matching crossbar recovers most of the
  attack (paper 28.8 vs non-adaptive 55.0 at eps=1), and a *mismatched*
  crossbar transfers poorly (43.5 on 64x64_300k — worse for the
  attacker than no crossbar model at all).
"""

from repro.experiments import table4
from repro.experiments.config import bench_profile as _profile


def bench_table4(benchmark, lab, factory, store):
    profile = _profile()
    tasks = ["cifar10"] if profile in ("tiny", "small") else ["cifar10", "cifar100"]

    def run():
        cells_by_task = {}
        for task in tasks:
            cells = [table4.run_ensemble_block(lab, task, factory)]
            cells.append(table4.run_square_block(lab, task, factory))
            cells.append(table4.run_whitebox_block(lab, task, factory, 1))
            if task == "cifar10" and profile not in ("tiny", "small"):
                cells.append(table4.run_whitebox_block(lab, task, factory, 2))
            cells_by_task[task] = cells
        return cells_by_task

    cells_by_task = benchmark.pedantic(run, rounds=1, iterations=1)
    store["table4_cells"] = cells_by_task

    print("\n=== Table IV: hardware-in-loop adaptive attacks ===")
    for task, cells in cells_by_task.items():
        print(f"--- {task} ---")
        for cell in cells:
            print(cell.format_row())

    for task, cells in cells_by_task.items():
        hil_ensemble = cells[0]
        # Adaptive ensemble attacks are much stronger than non-adaptive:
        # hardware accuracy falls to (or below) the baseline's level.
        for preset in ("32x32_100k", "64x64_100k"):
            assert hil_ensemble.variants[preset] <= hil_ensemble.baseline + 0.15
