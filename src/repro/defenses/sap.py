"""Stochastic Activation Pruning (Dhillon et al. [20]).

At inference, after every convolution layer the activations are
randomly pruned with probability proportional to their magnitude:
values are sampled (with replacement) from the categorical distribution
``p_i = |a_i| / sum|a|``; activations never sampled are zeroed, sampled
ones are rescaled by the inverse of their keep probability so the layer
output stays unbiased.

The paper applies SAP to CIFAR-10/100 as a comparison defense for a
pretrained network.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.layers import Conv2d
from repro.nn.module import Module


class SAPLayer(Module):
    """Magnitude-proportional stochastic pruning of one activation map.

    Parameters
    ----------
    sample_fraction:
        Number of categorical draws as a fraction of the activation
        count (the paper's k; higher = less pruning).
    rng:
        Source of randomness — SAP is a *stochastic* defense, each
        query sees fresh pruning.
    """

    def __init__(self, sample_fraction: float = 1.0, rng: np.random.Generator | None = None):
        super().__init__()
        if sample_fraction <= 0:
            raise ValueError("sample_fraction must be positive")
        self.sample_fraction = sample_fraction
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        data = x.data
        n = data.shape[0]
        flat = np.abs(data.reshape(n, -1)).astype(np.float64)
        size = flat.shape[1]
        draws = max(1, int(round(self.sample_fraction * size)))
        totals = flat.sum(axis=1, keepdims=True)
        # Degenerate all-zero maps pass through untouched.
        safe = totals.squeeze(1) > 0
        probs = np.where(totals > 0, flat / np.maximum(totals, 1e-30), 0.0)
        # P(kept at least once in `draws` draws) = 1 - (1 - p)^draws.
        keep_prob = 1.0 - np.power(1.0 - probs, draws)
        kept = self.rng.random(probs.shape) < keep_prob
        scale = np.zeros_like(probs)
        np.divide(1.0, keep_prob, out=scale, where=kept & (keep_prob > 0))
        scale[~safe] = 1.0
        mask = scale.reshape(data.shape).astype(np.float32)

        def backward(grad: np.ndarray) -> None:
            if x.requires_grad:
                x._accumulate(grad * mask)

        return Tensor._make(data * mask, (x,), backward)

    def __repr__(self) -> str:
        return f"SAPLayer(sample_fraction={self.sample_fraction})"


class StochasticActivationPruning(Module):
    """Wrap a pretrained model with SAP after every convolution."""

    def __init__(
        self,
        model: Module,
        sample_fraction: float = 1.0,
        seed: int = 0,
    ):
        super().__init__()
        # Work on a copy: the pretrained victim stays untouched.
        self.model = copy.deepcopy(model)
        rng = np.random.default_rng(seed)
        self._sap_layers: list[SAPLayer] = []
        self._install(self.model, sample_fraction, rng)

    def _install(self, model: Module, fraction: float, rng: np.random.Generator) -> None:
        """Chain a SAPLayer onto every Conv2d in the wrapped model."""
        from repro.nn.module import Sequential  # local to avoid cycle at import

        replacements = []
        for name, module in model.named_modules():
            if name and isinstance(module, Conv2d):
                sap = SAPLayer(fraction, rng)
                self._sap_layers.append(sap)
                replacements.append((name, Sequential(module, sap)))
        for name, replacement in replacements:
            model.set_submodule(name, replacement)

    def forward(self, x: Tensor) -> Tensor:
        return self.model(x)

    def __repr__(self) -> str:
        return f"StochasticActivationPruning(layers={len(self._sap_layers)})"
